//! The functional NVM image: sparse, zero-filled, snapshot-able, attackable.
//!
//! A 16 GB device holds 2^28 lines, far more than any trace touches, so the
//! default backend is a hash map of touched lines over an implicit all-zero
//! image. Untouched lines read as zero — which the integrity layer exploits:
//! an all-zero SIT node with an all-zero "never written" MAC convention sums
//! to zero in counter-summing recovery, so untouched subtrees cost nothing
//! to reconstruct.
//!
//! Since PR 8 the store is a facade over a [`Backend`]: the same image can
//! live in memory ([`MemBackend`]) or in a page-granular file with
//! copy-on-write checkpoints ([`FileBackend`]), opened via
//! [`NvmStore::create_file`]/[`NvmStore::open_file`]. The facade owns the
//! backend-agnostic concerns: capacity bounds, write accounting, and the
//! bounded undo-history journal the fault injector feeds on.
//!
//! Because NVM is *outside* the trusted domain (§II-A), the store also
//! exposes [`NvmStore::tamper_line`] so attack experiments can model an
//! adversary with full physical access (stolen DIMM, bus control).

use crate::addr::{LineAddr, LINE_BYTES};
use crate::backend::{Backend, IoError, MemBackend, OpenError};
use crate::checkpoint::FileBackend;
use std::collections::HashMap;
use std::path::Path;

/// One 64 B line of content.
pub type Line = [u8; LINE_BYTES];

/// An all-zero line, the content of any never-written address.
pub const ZERO_LINE: Line = [0u8; LINE_BYTES];

/// Default bound on the undo-history journal (distinct journalled lines).
/// Long campaigns touch the same working set repeatedly, so 2^16 entries
/// cover every realistic fault-injection window; beyond it new addresses
/// are dropped and counted, mirroring the `trace.dropped_events` pattern.
pub const DEFAULT_HISTORY_CAP: usize = 1 << 16;

/// Where the image lives.
#[derive(Debug, Clone)]
enum StoreBackend {
    Mem(MemBackend),
    File(FileBackend),
}

impl StoreBackend {
    fn get(&self) -> &dyn Backend {
        match self {
            StoreBackend::Mem(b) => b,
            StoreBackend::File(b) => b,
        }
    }

    fn get_mut(&mut self) -> &mut dyn Backend {
        match self {
            StoreBackend::Mem(b) => b,
            StoreBackend::File(b) => b,
        }
    }
}

/// Occupancy of the bounded undo-history journal (see
/// [`NvmStore::history_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoryStats {
    /// Distinct lines currently journalled.
    pub entries: usize,
    /// Journal capacity in distinct lines.
    pub cap: usize,
    /// Writes whose pre-image was discarded because the journal was full.
    pub dropped: u64,
}

/// The bounded pre-write journal: per-line "old" content for the fault
/// injector, capped so week-long campaigns cannot grow it without limit.
#[derive(Debug, Clone)]
struct HistoryJournal {
    map: HashMap<LineAddr, Line>,
    cap: usize,
    dropped: u64,
}

impl HistoryJournal {
    fn new(cap: usize) -> Self {
        Self {
            map: HashMap::new(),
            cap,
            dropped: 0,
        }
    }

    fn record(&mut self, addr: LineAddr, old: Line) {
        if self.map.len() >= self.cap && !self.map.contains_key(&addr) {
            // Drop-new keeps the policy deterministic: the journal holds
            // the *oldest* working set, and the drop counter surfaces
            // the loss instead of silently evicting.
            self.dropped += 1;
            return;
        }
        self.map.insert(addr, old);
    }
}

/// Sparse functional NVM image (facade over a [`Backend`]).
#[derive(Debug, Clone)]
pub struct NvmStore {
    backend: StoreBackend,
    capacity_lines: Option<u64>,
    writes: u64,
    history: Option<HistoryJournal>,
    history_cap: usize,
}

impl Default for NvmStore {
    fn default() -> Self {
        Self {
            backend: StoreBackend::Mem(MemBackend::new()),
            capacity_lines: None,
            writes: 0,
            history: None,
            history_cap: DEFAULT_HISTORY_CAP,
        }
    }
}

impl NvmStore {
    /// An unbounded in-memory store (tests, small experiments).
    pub fn new() -> Self {
        Self::default()
    }

    /// An in-memory store that rejects addresses at or beyond
    /// `capacity_lines`.
    pub fn with_capacity_lines(capacity_lines: u64) -> Self {
        Self {
            capacity_lines: Some(capacity_lines),
            ..Self::default()
        }
    }

    /// Creates a fresh durable image file at `path` (see
    /// [`FileBackend::create`]) and wraps it in a store.
    pub fn create_file(path: &Path) -> Result<Self, OpenError> {
        Ok(Self {
            backend: StoreBackend::File(FileBackend::create(path)?),
            ..Self::default()
        })
    }

    /// Opens an existing durable image, selecting the newest valid
    /// checkpoint slot and falling back past a torn one (see
    /// [`FileBackend::open`]).
    pub fn open_file(path: &Path) -> Result<Self, OpenError> {
        Ok(Self {
            backend: StoreBackend::File(FileBackend::open(path)?),
            ..Self::default()
        })
    }

    /// Whether the image is file-backed (durable) rather than in-memory.
    pub fn is_durable(&self) -> bool {
        matches!(self.backend, StoreBackend::File(_))
    }

    /// Whether opening this image had to fall back past a damaged newest
    /// checkpoint slot. Always `false` for in-memory stores.
    pub fn fell_back(&self) -> bool {
        match &self.backend {
            StoreBackend::Mem(_) => false,
            StoreBackend::File(b) => b.fell_back(),
        }
    }

    /// Turns the undo-history journal on or off.
    ///
    /// While on, every [`NvmStore::write_line`] records the line's
    /// pre-write content (up to the configured cap — see
    /// [`NvmStore::set_history_cap`]), so the fault injector can later
    /// synthesise a torn write (prefix new, suffix old) or a dropped
    /// write (full revert). Turning tracking off discards the journal.
    pub fn track_history(&mut self, on: bool) {
        self.history = if on {
            Some(
                self.history
                    .take()
                    .unwrap_or_else(|| HistoryJournal::new(self.history_cap)),
            )
        } else {
            None
        };
    }

    /// Sets the journal's capacity in distinct lines (default
    /// [`DEFAULT_HISTORY_CAP`]). Applies to the live journal immediately;
    /// already-journalled entries are kept even if over the new cap.
    pub fn set_history_cap(&mut self, cap: usize) {
        self.history_cap = cap;
        if let Some(j) = self.history.as_mut() {
            j.cap = cap;
        }
    }

    /// Occupancy and drop count of the undo-history journal.
    pub fn history_stats(&self) -> HistoryStats {
        match &self.history {
            Some(j) => HistoryStats {
                entries: j.map.len(),
                cap: j.cap,
                dropped: j.dropped,
            },
            None => HistoryStats {
                entries: 0,
                cap: self.history_cap,
                dropped: 0,
            },
        }
    }

    /// The content this line held *before* its most recent write, when
    /// history tracking was on for that write.
    pub fn previous_line(&self, addr: LineAddr) -> Option<Line> {
        self.history.as_ref()?.map.get(&addr).copied()
    }

    /// Reads a line; untouched lines are zero.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity — that is a
    /// simulator wiring bug, not a runtime condition.
    pub fn read_line(&self, addr: LineAddr) -> Line {
        self.check_bounds(addr);
        self.backend.get().read_line(addr)
    }

    /// Writes a line.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn write_line(&mut self, addr: LineAddr, line: Line) {
        self.check_bounds(addr);
        self.writes += 1;
        if self.history.is_some() {
            let old = self.backend.get().read_line(addr);
            if let Some(history) = self.history.as_mut() {
                history.record(addr, old);
            }
        }
        self.backend.get_mut().write_line(addr, line);
    }

    /// Number of distinct touched (non-zero) lines.
    pub fn touched_lines(&self) -> usize {
        self.backend.get().nonzero_lines() as usize
    }

    /// Total writes ever applied (endurance proxy).
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Iterates over all non-zero lines (address order unspecified).
    ///
    /// Lines are owned: a file backend pages content in on demand, so
    /// there is no stable map to borrow from.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, Line)> {
        self.backend.get().lines().into_iter()
    }

    /// Commits the image plus the caller's `meta` blob as a durable
    /// checkpoint generation (an epoch boundary marker on in-memory
    /// backends). Returns the committed generation.
    pub fn checkpoint(&mut self, meta: &[u8]) -> Result<u64, IoError> {
        self.backend.get_mut().checkpoint(meta)
    }

    /// The last committed checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.backend.get().generation()
    }

    /// The meta blob of the last committed checkpoint.
    pub fn meta(&self) -> &[u8] {
        self.backend.get().meta()
    }

    /// The first I/O failure swallowed on the infallible read/write path,
    /// if any (file backends only).
    pub fn last_io_error(&self) -> Option<IoError> {
        self.backend.get().last_io_error()
    }

    /// Captures the full image for later [`NvmStore::restore`] — used by
    /// crash experiments to model "the state at power-fail".
    pub fn snapshot(&self) -> NvmSnapshot {
        let lines = match &self.backend {
            StoreBackend::Mem(b) => b.line_map().clone(),
            StoreBackend::File(b) => b.lines().into_iter().collect(),
        };
        NvmSnapshot { lines }
    }

    /// Restores a previously captured image (write statistics unchanged).
    pub fn restore(&mut self, snapshot: &NvmSnapshot) {
        match &mut self.backend {
            StoreBackend::Mem(b) => b.replace_lines(snapshot.lines.clone()),
            StoreBackend::File(b) => {
                // Zero everything not in the snapshot, then lay the
                // snapshot down — bypassing facade accounting, like the
                // in-memory wholesale replacement.
                for (addr, _) in b.lines() {
                    if !snapshot.lines.contains_key(&addr) {
                        b.write_line(addr, ZERO_LINE);
                    }
                }
                for (&addr, &line) in &snapshot.lines {
                    b.write_line(addr, line);
                }
            }
        }
    }

    /// Adversarial mutation of NVM content, bypassing all accounting.
    ///
    /// Returns the previous content so attacks can record old (data, MAC)
    /// tuples for replay.
    pub fn tamper_line(&mut self, addr: LineAddr, line: Line) -> Line {
        self.check_bounds(addr);
        let old = self.backend.get().read_line(addr);
        self.backend.get_mut().write_line(addr, line);
        old
    }

    fn check_bounds(&self, addr: LineAddr) {
        if let Some(cap) = self.capacity_lines {
            assert!(
                addr.raw() < cap,
                "address {addr} beyond NVM capacity of {cap} lines"
            );
        }
    }
}

/// A captured NVM image (see [`NvmStore::snapshot`]).
#[derive(Debug, Clone)]
pub struct NvmSnapshot {
    lines: HashMap<LineAddr, Line>,
}

impl NvmSnapshot {
    /// Number of non-zero lines in the snapshot.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_lines_read_zero() {
        let store = NvmStore::new();
        assert_eq!(store.read_line(LineAddr::new(42)), ZERO_LINE);
    }

    #[test]
    fn write_then_read() {
        let mut store = NvmStore::new();
        let line = [7u8; LINE_BYTES];
        store.write_line(LineAddr::new(1), line);
        assert_eq!(store.read_line(LineAddr::new(1)), line);
        assert_eq!(store.touched_lines(), 1);
    }

    #[test]
    fn zero_write_keeps_store_sparse() {
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(1), [1u8; LINE_BYTES]);
        store.write_line(LineAddr::new(1), ZERO_LINE);
        assert_eq!(store.touched_lines(), 0);
        assert_eq!(store.read_line(LineAddr::new(1)), ZERO_LINE);
        assert_eq!(store.total_writes(), 2);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(3), [3u8; LINE_BYTES]);
        let snap = store.snapshot();
        store.write_line(LineAddr::new(3), [4u8; LINE_BYTES]);
        store.write_line(LineAddr::new(9), [9u8; LINE_BYTES]);
        store.restore(&snap);
        assert_eq!(store.read_line(LineAddr::new(3)), [3u8; LINE_BYTES]);
        assert_eq!(store.read_line(LineAddr::new(9)), ZERO_LINE);
    }

    #[test]
    fn tamper_returns_old_content() {
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(5), [5u8; LINE_BYTES]);
        let old = store.tamper_line(LineAddr::new(5), [6u8; LINE_BYTES]);
        assert_eq!(old, [5u8; LINE_BYTES]);
        assert_eq!(store.read_line(LineAddr::new(5)), [6u8; LINE_BYTES]);
    }

    #[test]
    fn tamper_does_not_count_as_write() {
        let mut store = NvmStore::new();
        store.tamper_line(LineAddr::new(5), [1u8; LINE_BYTES]);
        assert_eq!(store.total_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond NVM capacity")]
    fn capacity_enforced() {
        let store = NvmStore::with_capacity_lines(10);
        let _ = store.read_line(LineAddr::new(10));
    }

    #[test]
    fn capacity_boundary_is_exclusive() {
        let mut store = NvmStore::with_capacity_lines(10);
        store.write_line(LineAddr::new(9), [1u8; LINE_BYTES]); // ok
    }

    #[test]
    fn history_journal_records_pre_write_content() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(1);
        store.write_line(a, [1u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), None, "tracking was off");
        store.track_history(true);
        store.write_line(a, [2u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), Some([1u8; LINE_BYTES]));
        store.write_line(a, [3u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), Some([2u8; LINE_BYTES]));
        // First-ever write journals the implicit zero image.
        store.write_line(LineAddr::new(2), [9u8; LINE_BYTES]);
        assert_eq!(store.previous_line(LineAddr::new(2)), Some(ZERO_LINE));
        // Tampering bypasses the journal entirely.
        store.tamper_line(a, [7u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), Some([2u8; LINE_BYTES]));
        store.track_history(false);
        assert_eq!(store.previous_line(a), None, "journal discarded");
    }

    #[test]
    fn history_journal_is_bounded_and_counts_drops() {
        let mut store = NvmStore::new();
        store.set_history_cap(2);
        store.track_history(true);
        store.write_line(LineAddr::new(1), [1u8; LINE_BYTES]);
        store.write_line(LineAddr::new(2), [2u8; LINE_BYTES]);
        // Journal full: a third distinct address is dropped …
        store.write_line(LineAddr::new(3), [3u8; LINE_BYTES]);
        // … but re-writes of journalled addresses still update in place.
        store.write_line(LineAddr::new(1), [9u8; LINE_BYTES]);
        let stats = store.history_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.cap, 2);
        assert_eq!(stats.dropped, 1);
        assert_eq!(
            store.previous_line(LineAddr::new(1)),
            Some([1u8; LINE_BYTES])
        );
        assert_eq!(store.previous_line(LineAddr::new(3)), None, "dropped");
    }

    #[test]
    fn default_history_cap_reported_when_tracking_off() {
        let store = NvmStore::new();
        let stats = store.history_stats();
        assert_eq!(stats.cap, DEFAULT_HISTORY_CAP);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn mem_store_checkpoint_is_an_epoch_marker() {
        let mut store = NvmStore::new();
        assert!(!store.is_durable());
        assert_eq!(store.generation(), 0);
        assert_eq!(store.checkpoint(b"m"), Ok(1));
        assert_eq!(store.meta(), b"m");
        assert!(!store.fell_back());
        assert!(store.last_io_error().is_none());
    }

    #[test]
    fn file_store_roundtrips_through_reopen() {
        let dir = std::env::temp_dir().join(format!("scue-store-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("facade.img");
        let mut store = NvmStore::create_file(&path).unwrap();
        assert!(store.is_durable());
        store.write_line(LineAddr::new(17), [17u8; LINE_BYTES]);
        let gen = store.checkpoint(b"facade meta").unwrap();
        drop(store);
        let store = NvmStore::open_file(&path).unwrap();
        assert_eq!(store.generation(), gen);
        assert_eq!(store.meta(), b"facade meta");
        assert_eq!(store.read_line(LineAddr::new(17)), [17u8; LINE_BYTES]);
        assert_eq!(store.touched_lines(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
