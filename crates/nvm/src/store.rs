//! The functional NVM image: sparse, zero-filled, snapshot-able, attackable.
//!
//! A 16 GB device holds 2^28 lines, far more than any trace touches, so the
//! store is a hash map of touched lines over an implicit all-zero image.
//! Untouched lines read as zero — which the integrity layer exploits: an
//! all-zero SIT node with an all-zero "never written" MAC convention sums
//! to zero in counter-summing recovery, so untouched subtrees cost nothing
//! to reconstruct.
//!
//! Because NVM is *outside* the trusted domain (§II-A), the store also
//! exposes [`NvmStore::tamper_line`] so attack experiments can model an
//! adversary with full physical access (stolen DIMM, bus control).

use crate::addr::{LineAddr, LINE_BYTES};
use std::collections::HashMap;

/// One 64 B line of content.
pub type Line = [u8; LINE_BYTES];

/// An all-zero line, the content of any never-written address.
pub const ZERO_LINE: Line = [0u8; LINE_BYTES];

/// Sparse functional NVM image.
#[derive(Debug, Clone, Default)]
pub struct NvmStore {
    lines: HashMap<LineAddr, Line>,
    capacity_lines: Option<u64>,
    writes: u64,
    /// Per-line pre-write content, recorded by [`NvmStore::write_line`]
    /// when history tracking is on — the fault injector needs the "old"
    /// half of a torn or dropped write.
    history: Option<HashMap<LineAddr, Line>>,
}

impl NvmStore {
    /// An unbounded store (tests, small experiments).
    pub fn new() -> Self {
        Self::default()
    }

    /// A store that rejects addresses at or beyond `capacity_lines`.
    pub fn with_capacity_lines(capacity_lines: u64) -> Self {
        Self {
            lines: HashMap::new(),
            capacity_lines: Some(capacity_lines),
            writes: 0,
            history: None,
        }
    }

    /// Turns the undo-history journal on or off.
    ///
    /// While on, every [`NvmStore::write_line`] records the line's
    /// pre-write content, so the fault injector can later synthesise a
    /// torn write (prefix new, suffix old) or a dropped write (full
    /// revert). Turning tracking off discards the journal.
    pub fn track_history(&mut self, on: bool) {
        self.history = if on {
            Some(self.history.take().unwrap_or_default())
        } else {
            None
        };
    }

    /// The content this line held *before* its most recent write, when
    /// history tracking was on for that write.
    pub fn previous_line(&self, addr: LineAddr) -> Option<Line> {
        self.history.as_ref()?.get(&addr).copied()
    }

    /// Reads a line; untouched lines are zero.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity — that is a
    /// simulator wiring bug, not a runtime condition.
    pub fn read_line(&self, addr: LineAddr) -> Line {
        self.check_bounds(addr);
        self.lines.get(&addr).copied().unwrap_or(ZERO_LINE)
    }

    /// Writes a line.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn write_line(&mut self, addr: LineAddr, line: Line) {
        self.check_bounds(addr);
        self.writes += 1;
        if let Some(history) = self.history.as_mut() {
            let old = self.lines.get(&addr).copied().unwrap_or(ZERO_LINE);
            history.insert(addr, old);
        }
        if line == ZERO_LINE {
            // Keep the map sparse: a zero write restores the implicit image.
            self.lines.remove(&addr);
        } else {
            self.lines.insert(addr, line);
        }
    }

    /// Number of distinct touched (non-zero) lines.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total writes ever applied (endurance proxy).
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Iterates over all non-zero lines (address order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &Line)> {
        self.lines.iter().map(|(a, l)| (*a, l))
    }

    /// Captures the full image for later [`NvmStore::restore`] — used by
    /// crash experiments to model "the state at power-fail".
    pub fn snapshot(&self) -> NvmSnapshot {
        NvmSnapshot {
            lines: self.lines.clone(),
        }
    }

    /// Restores a previously captured image (write statistics unchanged).
    pub fn restore(&mut self, snapshot: &NvmSnapshot) {
        self.lines = snapshot.lines.clone();
    }

    /// Adversarial mutation of NVM content, bypassing all accounting.
    ///
    /// Returns the previous content so attacks can record old (data, MAC)
    /// tuples for replay.
    pub fn tamper_line(&mut self, addr: LineAddr, line: Line) -> Line {
        self.check_bounds(addr);
        let old = self.lines.get(&addr).copied().unwrap_or(ZERO_LINE);
        if line == ZERO_LINE {
            self.lines.remove(&addr);
        } else {
            self.lines.insert(addr, line);
        }
        old
    }

    fn check_bounds(&self, addr: LineAddr) {
        if let Some(cap) = self.capacity_lines {
            assert!(
                addr.raw() < cap,
                "address {addr} beyond NVM capacity of {cap} lines"
            );
        }
    }
}

/// A captured NVM image (see [`NvmStore::snapshot`]).
#[derive(Debug, Clone)]
pub struct NvmSnapshot {
    lines: HashMap<LineAddr, Line>,
}

impl NvmSnapshot {
    /// Number of non-zero lines in the snapshot.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_lines_read_zero() {
        let store = NvmStore::new();
        assert_eq!(store.read_line(LineAddr::new(42)), ZERO_LINE);
    }

    #[test]
    fn write_then_read() {
        let mut store = NvmStore::new();
        let line = [7u8; LINE_BYTES];
        store.write_line(LineAddr::new(1), line);
        assert_eq!(store.read_line(LineAddr::new(1)), line);
        assert_eq!(store.touched_lines(), 1);
    }

    #[test]
    fn zero_write_keeps_store_sparse() {
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(1), [1u8; LINE_BYTES]);
        store.write_line(LineAddr::new(1), ZERO_LINE);
        assert_eq!(store.touched_lines(), 0);
        assert_eq!(store.read_line(LineAddr::new(1)), ZERO_LINE);
        assert_eq!(store.total_writes(), 2);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(3), [3u8; LINE_BYTES]);
        let snap = store.snapshot();
        store.write_line(LineAddr::new(3), [4u8; LINE_BYTES]);
        store.write_line(LineAddr::new(9), [9u8; LINE_BYTES]);
        store.restore(&snap);
        assert_eq!(store.read_line(LineAddr::new(3)), [3u8; LINE_BYTES]);
        assert_eq!(store.read_line(LineAddr::new(9)), ZERO_LINE);
    }

    #[test]
    fn tamper_returns_old_content() {
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(5), [5u8; LINE_BYTES]);
        let old = store.tamper_line(LineAddr::new(5), [6u8; LINE_BYTES]);
        assert_eq!(old, [5u8; LINE_BYTES]);
        assert_eq!(store.read_line(LineAddr::new(5)), [6u8; LINE_BYTES]);
    }

    #[test]
    fn tamper_does_not_count_as_write() {
        let mut store = NvmStore::new();
        store.tamper_line(LineAddr::new(5), [1u8; LINE_BYTES]);
        assert_eq!(store.total_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond NVM capacity")]
    fn capacity_enforced() {
        let store = NvmStore::with_capacity_lines(10);
        let _ = store.read_line(LineAddr::new(10));
    }

    #[test]
    fn capacity_boundary_is_exclusive() {
        let mut store = NvmStore::with_capacity_lines(10);
        store.write_line(LineAddr::new(9), [1u8; LINE_BYTES]); // ok
    }

    #[test]
    fn history_journal_records_pre_write_content() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(1);
        store.write_line(a, [1u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), None, "tracking was off");
        store.track_history(true);
        store.write_line(a, [2u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), Some([1u8; LINE_BYTES]));
        store.write_line(a, [3u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), Some([2u8; LINE_BYTES]));
        // First-ever write journals the implicit zero image.
        store.write_line(LineAddr::new(2), [9u8; LINE_BYTES]);
        assert_eq!(store.previous_line(LineAddr::new(2)), Some(ZERO_LINE));
        // Tampering bypasses the journal entirely.
        store.tamper_line(a, [7u8; LINE_BYTES]);
        assert_eq!(store.previous_line(a), Some([2u8; LINE_BYTES]));
        store.track_history(false);
        assert_eq!(store.previous_line(a), None, "journal discarded");
    }
}
