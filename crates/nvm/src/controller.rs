//! The memory-controller back end: store + timing + WPQs + ADR.
//!
//! This is the component every update scheme talks to. It routes reads to
//! the PCM device, writes through the appropriate write-pending queue
//! (user data vs. security metadata, Table II), keeps the functional NVM
//! image in sync, and implements the ADR/eADR crash contract: anything
//! accepted into a WPQ is durable, anything only in volatile caches is
//! durable only under eADR.

use crate::addr::{Cycle, LineAddr};
use crate::backend::IoError;
use crate::fault::{self, FaultRecord, NvmFault, TornPrefix, WORDS_PER_LINE};
use crate::store::{Line, NvmStore};
use crate::timing::{PcmDevice, PcmTiming};
use crate::wpq::{Enqueued, InFlight, WpqStats, WritePendingQueue};
use scue_util::obs::span;

/// What a memory access carries — the paper separates user-data traffic
/// from security-metadata traffic throughout the evaluation (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Encrypted user data lines.
    UserData,
    /// Counter blocks and integrity-tree nodes.
    Metadata,
}

/// Per-kind access statistics (drives the §V-E memory-access experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// User-data line reads served from NVM.
    pub user_reads: u64,
    /// User-data line writes accepted.
    pub user_writes: u64,
    /// Metadata line reads served from NVM.
    pub meta_reads: u64,
    /// Metadata line writes accepted.
    pub meta_writes: u64,
}

impl MemStats {
    /// Total reads of any kind.
    pub fn total_reads(&self) -> u64 {
        self.user_reads + self.meta_reads
    }

    /// Total writes of any kind.
    pub fn total_writes(&self) -> u64 {
        self.user_writes + self.meta_writes
    }

    /// Total accesses of any kind.
    pub fn total(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Metadata-only accesses (reads + writes).
    pub fn metadata_total(&self) -> u64 {
        self.meta_reads + self.meta_writes
    }
}

/// Fixed controller pipeline overhead added to every device access, cycles.
const CONTROLLER_OVERHEAD: u64 = 14;

/// The NVM memory controller back end.
///
/// # Example
///
/// ```
/// use scue_nvm::{AccessKind, LineAddr, MemoryController};
///
/// let mut mc = MemoryController::paper();
/// let line = [9u8; 64];
/// let accepted = mc.write(LineAddr::new(4), line, 0, AccessKind::UserData);
/// let (data, done) = mc.read(LineAddr::new(4), accepted.accepted, AccessKind::UserData);
/// assert_eq!(data, line);
/// assert!(done > accepted.accepted);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    store: NvmStore,
    device: PcmDevice,
    user_wpq: WritePendingQueue,
    meta_wpq: WritePendingQueue,
    stats: MemStats,
}

impl MemoryController {
    /// Builds a controller from explicit parts.
    pub fn new(
        store: NvmStore,
        device: PcmDevice,
        user_wpq_entries: usize,
        meta_wpq_entries: usize,
    ) -> Self {
        Self {
            store,
            device,
            user_wpq: WritePendingQueue::new(user_wpq_entries),
            meta_wpq: WritePendingQueue::new(meta_wpq_entries),
            stats: MemStats::default(),
        }
    }

    /// The paper's configuration: 16 GB PCM, 64-entry user WPQ, 10-entry
    /// metadata WPQ.
    pub fn paper() -> Self {
        Self::new(NvmStore::new(), PcmDevice::paper(), 64, 10)
    }

    /// A small fast controller for unit tests.
    pub fn for_tests() -> Self {
        Self::new(
            NvmStore::new(),
            PcmDevice::new(PcmTiming::uniform(10), 4, 64),
            4,
            2,
        )
    }

    /// Reads a line; returns its content and the completion cycle.
    pub fn read(&mut self, addr: LineAddr, now: Cycle, kind: AccessKind) -> (Line, Cycle) {
        match kind {
            AccessKind::UserData => self.stats.user_reads += 1,
            AccessKind::Metadata => self.stats.meta_reads += 1,
        }
        let sched = self.device.schedule_read(addr, now + CONTROLLER_OVERHEAD);
        (self.store.read_line(addr), sched.done)
    }

    /// Accepts a write; the line is durable once accepted (ADR covers the
    /// WPQ), and the media write drains in the background.
    pub fn write(&mut self, addr: LineAddr, line: Line, now: Cycle, kind: AccessKind) -> Enqueued {
        let _span = span::enter("wpq.persist");
        let wpq = match kind {
            AccessKind::UserData => {
                self.stats.user_writes += 1;
                &mut self.user_wpq
            }
            AccessKind::Metadata => {
                self.stats.meta_writes += 1;
                &mut self.meta_wpq
            }
        };
        let enq = wpq.enqueue(addr, now + CONTROLLER_OVERHEAD, &mut self.device);
        // Functionally durable at acceptance: ADR drains the WPQ on crash.
        self.store.write_line(addr, line);
        enq
    }

    /// Accepts a write that is *coalesced* with another in-flight
    /// transaction to the same DIMM — Supermem-style counter write-through,
    /// where the counter line rides with its data line. The write is
    /// durable immediately and counts toward §V-E access statistics, but
    /// adds no separate device transaction.
    pub fn write_coalesced(&mut self, addr: LineAddr, line: Line, kind: AccessKind) {
        let _span = span::enter("wpq.persist");
        match kind {
            AccessKind::UserData => self.stats.user_writes += 1,
            AccessKind::Metadata => self.stats.meta_writes += 1,
        }
        self.store.write_line(addr, line);
    }

    /// Peeks at NVM content without timing or statistics (used by recovery,
    /// which the paper times separately via its own fetch model).
    pub fn peek(&self, addr: LineAddr) -> Line {
        self.store.read_line(addr)
    }

    /// Cycle by which both WPQs have fully drained.
    pub fn drained_at(&self) -> Cycle {
        self.user_wpq.drained_at().max(self.meta_wpq.drained_at())
    }

    /// A checkpoint epoch boundary: flush-barriers both WPQs (charging the
    /// drain time), then commits the functional image plus the caller's
    /// `meta` blob as a durable checkpoint generation. Returns the
    /// committed generation and the cycle the flush completed.
    pub fn checkpoint(&mut self, now: Cycle, meta: &[u8]) -> Result<(u64, Cycle), IoError> {
        let _span = span::enter("wpq.persist");
        let flushed = self.user_wpq.barrier(now).max(self.meta_wpq.barrier(now));
        let generation = self.store.checkpoint(meta)?;
        Ok((generation, flushed))
    }

    /// Models a power failure under ADR: queued writes are already durable
    /// in the functional store; volatile device/queue state clears.
    pub fn crash(&mut self) {
        self.user_wpq.clear();
        self.meta_wpq.clear();
        self.device.reset_occupancy();
    }

    /// WPQ entries (user + metadata) still draining to media at `now`.
    pub fn in_flight_writes(&self, now: Cycle) -> Vec<InFlight> {
        let mut all = self.user_wpq.in_flight_at(now);
        all.extend(self.meta_wpq.in_flight_at(now));
        all
    }

    /// Models a power failure where the ADR flush *fails*: every WPQ entry
    /// still draining at `at` is torn at 8-byte granularity, proportional
    /// to how far its media write had progressed. Requires the store's
    /// history journal (see [`NvmStore::track_history`]); entries without
    /// recorded history are left untouched and reported as unapplied.
    ///
    /// Returns one [`FaultRecord`] per torn entry, then performs the
    /// normal [`MemoryController::crash`] teardown.
    pub fn crash_with_tearing(&mut self, at: Cycle) -> Vec<FaultRecord> {
        let mut records = Vec::new();
        for entry in self.in_flight_writes(at) {
            let span = entry.drained.saturating_sub(entry.accepted).max(1);
            let progress = at.saturating_sub(entry.accepted).min(span);
            let words_new = ((progress as u128 * WORDS_PER_LINE as u128) / span as u128) as usize;
            if words_new < WORDS_PER_LINE {
                records.push(fault::apply(
                    &mut self.store,
                    NvmFault::TornWrite {
                        addr: entry.addr,
                        words_new,
                    },
                ));
            }
        }
        self.crash();
        records
    }

    /// Models a power failure whose ADR flush stopped at an exact
    /// abstract drain prefix of the **metadata** WPQ: the first
    /// `prefix.fully_drained` in-flight entries (FIFO order) commit
    /// whole, the next commits only its first `prefix.words_new` 8-byte
    /// words, and every entry behind it commits nothing. User-data
    /// entries drain whole (the prefix describes metadata durability
    /// only — the model checker's abstraction).
    ///
    /// Requires the store's history journal, like
    /// [`MemoryController::crash_with_tearing`]. Returns one
    /// [`FaultRecord`] per entry that did not commit whole.
    pub fn crash_with_torn_prefix(&mut self, at: Cycle, prefix: TornPrefix) -> Vec<FaultRecord> {
        let mut records = Vec::new();
        for (pos, entry) in self.meta_wpq.in_flight_at(at).iter().enumerate() {
            let words_new = match pos.cmp(&prefix.fully_drained) {
                std::cmp::Ordering::Less => WORDS_PER_LINE,
                std::cmp::Ordering::Equal => prefix.words_new.min(WORDS_PER_LINE),
                std::cmp::Ordering::Greater => 0,
            };
            if words_new < WORDS_PER_LINE {
                records.push(fault::apply(
                    &mut self.store,
                    NvmFault::TornWrite {
                        addr: entry.addr,
                        words_new,
                    },
                ));
            }
        }
        self.crash();
        records
    }

    /// Applies one explicit media fault to the post-crash image.
    pub fn inject_fault(&mut self, fault: NvmFault) -> FaultRecord {
        fault::apply(&mut self.store, fault)
    }

    /// Access statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Immutable view of the functional NVM image.
    pub fn store(&self) -> &NvmStore {
        &self.store
    }

    /// Mutable view of the functional NVM image (attack injection,
    /// recovery rewrites).
    pub fn store_mut(&mut self) -> &mut NvmStore {
        &mut self.store
    }

    /// The timing device (for idle horizons and counters).
    pub fn device(&self) -> &PcmDevice {
        &self.device
    }

    /// WPQ statistics: `(user queue, metadata queue)`.
    pub fn wpq_stats(&self) -> (WpqStats, WpqStats) {
        (self.user_wpq.stats(), self.meta_wpq.stats())
    }

    /// In-flight entries of each WPQ at `now`: `(user, metadata)` — the
    /// occupancy gauge sampled into epoch time-series.
    pub fn wpq_occupancy(&self, now: Cycle) -> (usize, usize) {
        (self.user_wpq.occupancy(now), self.meta_wpq.occupancy(now))
    }
}

impl Default for MemoryController {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut mc = MemoryController::for_tests();
        let line = [0xAB; 64];
        mc.write(LineAddr::new(7), line, 0, AccessKind::UserData);
        let (data, done) = mc.read(LineAddr::new(7), 100, AccessKind::UserData);
        assert_eq!(data, line);
        assert!(done >= 100);
    }

    #[test]
    fn stats_split_by_kind() {
        let mut mc = MemoryController::for_tests();
        mc.write(LineAddr::new(0), [1; 64], 0, AccessKind::UserData);
        mc.write(LineAddr::new(1), [2; 64], 0, AccessKind::Metadata);
        mc.read(LineAddr::new(0), 0, AccessKind::UserData);
        mc.read(LineAddr::new(1), 0, AccessKind::Metadata);
        mc.read(LineAddr::new(1), 0, AccessKind::Metadata);
        let s = mc.stats();
        assert_eq!(s.user_reads, 1);
        assert_eq!(s.user_writes, 1);
        assert_eq!(s.meta_reads, 2);
        assert_eq!(s.meta_writes, 1);
        assert_eq!(s.total(), 5);
        assert_eq!(s.metadata_total(), 3);
    }

    #[test]
    fn writes_survive_crash() {
        let mut mc = MemoryController::for_tests();
        mc.write(LineAddr::new(3), [3; 64], 0, AccessKind::UserData);
        mc.crash();
        assert_eq!(mc.peek(LineAddr::new(3)), [3; 64], "ADR drains the WPQ");
    }

    #[test]
    fn peek_does_not_count() {
        let mut mc = MemoryController::for_tests();
        mc.write(LineAddr::new(3), [3; 64], 0, AccessKind::UserData);
        let _ = mc.peek(LineAddr::new(3));
        assert_eq!(mc.stats().total_reads(), 0);
    }

    #[test]
    fn controller_overhead_applied() {
        let mut mc = MemoryController::for_tests();
        let (_, done) = mc.read(LineAddr::new(0), 0, AccessKind::UserData);
        // uniform(10) miss = tRCD + tCL = 20 cycles after overhead.
        assert_eq!(done, 14 + 20);
    }

    #[test]
    fn crash_with_tearing_tears_in_flight_writes() {
        let mut mc = MemoryController::for_tests();
        mc.store_mut().track_history(true);
        let a = LineAddr::new(3);
        mc.write(a, [1; 64], 0, AccessKind::UserData);
        // Let the first write drain fully, then crash mid-way through a
        // second write to the same line.
        let horizon = mc.drained_at();
        let enq = mc.write(a, [2; 64], horizon, AccessKind::UserData);
        let mid = enq.accepted + (enq.drained - enq.accepted) / 2;
        let records = mc.crash_with_tearing(mid);
        assert_eq!(records.len(), 1);
        assert!(records[0].applied);
        let line = mc.peek(a);
        assert_ne!(line, [1; 64], "some new words landed");
        assert_ne!(line, [2; 64], "but not all of them");
        assert_eq!(mc.wpq_occupancy(mid), (0, 0), "queues cleared");
    }

    #[test]
    fn crash_with_tearing_spares_drained_writes() {
        let mut mc = MemoryController::for_tests();
        mc.store_mut().track_history(true);
        mc.write(LineAddr::new(3), [1; 64], 0, AccessKind::UserData);
        let records = mc.crash_with_tearing(mc.drained_at());
        assert!(records.is_empty(), "nothing in flight at the horizon");
        assert_eq!(mc.peek(LineAddr::new(3)), [1; 64]);
    }

    #[test]
    fn crash_before_acceptance_reverts_the_write() {
        let mut mc = MemoryController::for_tests();
        mc.store_mut().track_history(true);
        let a = LineAddr::new(5);
        mc.write(a, [1; 64], 0, AccessKind::UserData);
        let horizon = mc.drained_at();
        let enq = mc.write(a, [2; 64], horizon, AccessKind::UserData);
        // Crash "before" the entry was accepted: zero words persisted.
        let records = mc.crash_with_tearing(enq.accepted.saturating_sub(1));
        assert_eq!(records.len(), 1);
        assert!(records[0].applied);
        assert_eq!(mc.peek(a), [1; 64], "write fully reverted");
    }

    /// Two metadata lines with drained old content plus one in-flight
    /// rewrite each — the shape the model checker's lowering produces.
    fn two_inflight_meta_rewrites() -> (MemoryController, Cycle) {
        let mut mc = MemoryController::for_tests();
        mc.store_mut().track_history(true);
        mc.write(LineAddr::new(10), [0xFF; 64], 0, AccessKind::Metadata);
        mc.write(LineAddr::new(11), [0xFF; 64], 0, AccessKind::Metadata);
        let horizon = mc.drained_at();
        mc.write(LineAddr::new(10), [1; 64], horizon, AccessKind::Metadata);
        mc.write(LineAddr::new(11), [2; 64], horizon, AccessKind::Metadata);
        (mc, horizon)
    }

    #[test]
    fn torn_prefix_splits_the_metadata_queue_by_position() {
        let (mut mc, horizon) = two_inflight_meta_rewrites();
        let records = mc.crash_with_torn_prefix(
            horizon,
            TornPrefix {
                fully_drained: 1,
                words_new: 2,
            },
        );
        assert_eq!(mc.peek(LineAddr::new(10)), [1; 64], "position 0 whole");
        let second = mc.peek(LineAddr::new(11));
        assert_eq!(&second[..16], &[2; 16], "two new words landed");
        assert_eq!(&second[16..], &[0xFF; 48], "suffix stayed old");
        assert_eq!(records.len(), 1, "only the torn entry is recorded");
        assert!(records[0].applied);
        assert_eq!(mc.wpq_occupancy(horizon), (0, 0), "queues cleared");
    }

    #[test]
    fn torn_prefix_drops_entries_behind_the_tear() {
        let (mut mc, horizon) = two_inflight_meta_rewrites();
        let records = mc.crash_with_torn_prefix(
            horizon,
            TornPrefix {
                fully_drained: 0,
                words_new: 0,
            },
        );
        assert_eq!(mc.peek(LineAddr::new(10)), [0xFF; 64], "write reverted");
        assert_eq!(mc.peek(LineAddr::new(11)), [0xFF; 64], "write reverted");
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.applied));
    }

    #[test]
    fn torn_prefix_spares_user_data_entries() {
        let mut mc = MemoryController::for_tests();
        mc.store_mut().track_history(true);
        mc.write(LineAddr::new(30), [7; 64], 0, AccessKind::UserData);
        let records = mc.crash_with_torn_prefix(
            0,
            TornPrefix {
                fully_drained: 0,
                words_new: 0,
            },
        );
        assert!(records.is_empty(), "user queue is outside the prefix");
        assert_eq!(mc.peek(LineAddr::new(30)), [7; 64], "ADR drained it whole");
    }

    #[test]
    fn inject_fault_reaches_the_store() {
        let mut mc = MemoryController::for_tests();
        mc.write(LineAddr::new(0), [0; 64], 0, AccessKind::UserData);
        let rec = mc.inject_fault(NvmFault::BitFlip {
            addr: LineAddr::new(0),
            byte: 1,
            bit: 0,
        });
        assert!(rec.applied);
        assert_eq!(mc.peek(LineAddr::new(0))[1], 1);
    }

    #[test]
    fn checkpoint_barriers_both_queues() {
        let mut mc = MemoryController::for_tests();
        mc.write(LineAddr::new(0), [1; 64], 0, AccessKind::UserData);
        mc.write(LineAddr::new(64), [2; 64], 0, AccessKind::Metadata);
        let horizon = mc.drained_at();
        let (generation, flushed) = mc.checkpoint(0, b"epoch").unwrap();
        assert_eq!(generation, 1);
        assert_eq!(flushed, horizon, "barrier waits for the slowest drain");
        let (user, meta) = mc.wpq_stats();
        assert_eq!(user.barriers, 1);
        assert_eq!(meta.barriers, 1);
        assert_eq!(mc.store().generation(), 1);
        assert_eq!(mc.store().meta(), b"epoch");
    }

    #[test]
    fn metadata_queue_is_separate() {
        let mut mc = MemoryController::for_tests();
        // Saturate the 2-entry metadata queue; user queue stays free.
        for i in 0..8 {
            mc.write(LineAddr::new(i * 4), [1; 64], 0, AccessKind::Metadata);
        }
        let (user, meta) = mc.wpq_stats();
        assert_eq!(user.full_stalls, 0);
        assert!(meta.full_stalls > 0);
    }
}
