//! On-disk layout of the durable NVM image.
//!
//! A durable image is a page-granular file (4 KB pages, 64 lines each):
//!
//! ```text
//! page 0      header      magic, layout version, geometry (CRC-guarded)
//! page 1..=2  root slots  dual generation+CRC checkpoint roots
//! page 3..    payload     data pages, page-table runs, meta-blob runs
//! ```
//!
//! The two root slots implement the atomic-commit protocol from the
//! wrongodb `add-checkpoint-cow` spec (SNIPPETS.md §1–2): checkpoint
//! generation `g` writes slot `1 + (g & 1)`, so the previous checkpoint's
//! slot is never touched while the new one commits. On open both slots
//! are parsed and CRC-checked and the newest *valid* one wins; a torn or
//! corrupt newest slot falls back to the previous checkpoint instead of
//! failing. Generations compare with wrapping arithmetic so the scheme
//! survives (contrived) u64 wraparound.
//!
//! Everything in this module is pure byte bashing — no I/O — so the
//! format is unit-testable without touching a filesystem.

use crate::addr::LINE_BYTES;

/// Bytes per on-disk page.
pub const PAGE_BYTES: usize = 4096;

/// 64 B lines per on-disk page.
pub const LINES_PER_PAGE: u64 = (PAGE_BYTES / LINE_BYTES) as u64;

/// File magic, page 0 byte 0.
pub const HEADER_MAGIC: [u8; 8] = *b"SCUENVM1";

/// Root-slot magic, slot byte 0.
pub const SLOT_MAGIC: [u8; 8] = *b"SCUEROOT";

/// Layout version stamped into the header.
pub const LAYOUT_VERSION: u32 = 1;

/// First page available for payload (after header + two root slots).
pub const FIRST_PAYLOAD_PAGE: u64 = 3;

/// The page holding the root slot for checkpoint generation `gen`.
pub const fn slot_page(gen: u64) -> u64 {
    1 + (gen & 1)
}

/// `true` when generation `a` is newer than `b` under wrapping
/// comparison (tolerates u64 generation wraparound).
pub const fn newer_gen(a: u64, b: u64) -> bool {
    (a.wrapping_sub(b) as i64) > 0
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — in-repo, zero dependencies.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Little-endian field cursors (no unwrap: every read is bounds-checked).
// ---------------------------------------------------------------------

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reads `n` raw bytes, or `None` past the end.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

// ---------------------------------------------------------------------
// Header page (page 0)
// ---------------------------------------------------------------------

/// Length of the CRC-guarded header prefix.
const HEADER_BODY_LEN: usize = 8 + 4 + 4 + 4;

/// Renders the header page: magic, version, page geometry, CRC.
pub fn encode_header() -> [u8; PAGE_BYTES] {
    let mut body = Vec::with_capacity(HEADER_BODY_LEN + 4);
    body.extend_from_slice(&HEADER_MAGIC);
    put_u32(&mut body, LAYOUT_VERSION);
    put_u32(&mut body, PAGE_BYTES as u32);
    put_u32(&mut body, LINES_PER_PAGE as u32);
    let crc = crc32(&body);
    put_u32(&mut body, crc);
    let mut page = [0u8; PAGE_BYTES];
    page[..body.len()].copy_from_slice(&body);
    page
}

/// Why a header failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The magic bytes are wrong — not a durable NVM image.
    BadMagic,
    /// A future (or corrupt) layout version.
    BadVersion(u32),
    /// Geometry fields disagree with this build's constants.
    BadGeometry,
    /// The header CRC does not match its contents (torn header).
    BadCrc,
    /// The file is shorter than one header page.
    Truncated,
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::BadMagic => write!(f, "not a SCUE NVM image (bad magic)"),
            HeaderError::BadVersion(v) => write!(f, "unsupported layout version {v}"),
            HeaderError::BadGeometry => write!(f, "page geometry mismatch"),
            HeaderError::BadCrc => write!(f, "header CRC mismatch (torn header)"),
            HeaderError::Truncated => write!(f, "file shorter than one header page"),
        }
    }
}

/// Validates a header page.
pub fn decode_header(page: &[u8]) -> Result<(), HeaderError> {
    if page.len() < HEADER_BODY_LEN + 4 {
        return Err(HeaderError::Truncated);
    }
    let mut c = Cursor::new(page);
    let magic = c.take(8).ok_or(HeaderError::Truncated)?;
    if magic != HEADER_MAGIC {
        return Err(HeaderError::BadMagic);
    }
    let version = c.u32().ok_or(HeaderError::Truncated)?;
    let page_bytes = c.u32().ok_or(HeaderError::Truncated)?;
    let lines_per_page = c.u32().ok_or(HeaderError::Truncated)?;
    let stored_crc = c.u32().ok_or(HeaderError::Truncated)?;
    if crc32(&page[..HEADER_BODY_LEN]) != stored_crc {
        return Err(HeaderError::BadCrc);
    }
    if version != LAYOUT_VERSION {
        return Err(HeaderError::BadVersion(version));
    }
    if page_bytes != PAGE_BYTES as u32 || lines_per_page != LINES_PER_PAGE as u32 {
        return Err(HeaderError::BadGeometry);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Root slots (pages 1 and 2)
// ---------------------------------------------------------------------

/// One parsed checkpoint root slot.
///
/// A slot pins everything a checkpoint needs to be reopened: where the
/// page table and the engine meta blob live (contiguous page runs, each
/// with its own CRC) and how long the file was at commit time — so a
/// truncated tail invalidates the slot instead of silently reading
/// zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootSlot {
    /// Checkpoint generation (monotonic, wrapping).
    pub generation: u64,
    /// First page of the serialized page table.
    pub table_page: u64,
    /// Byte length of the serialized page table.
    pub table_len: u64,
    /// CRC-32 of the serialized page table.
    pub table_crc: u32,
    /// First page of the engine meta blob.
    pub meta_page: u64,
    /// Byte length of the engine meta blob.
    pub meta_len: u64,
    /// CRC-32 of the engine meta blob.
    pub meta_crc: u32,
    /// File length in pages at commit time (truncation detector).
    pub file_pages: u64,
    /// Non-zero lines in the committed image (cached statistic).
    pub nonzero_lines: u64,
}

/// Fixed byte length of the CRC-guarded slot body.
const SLOT_BODY_LEN: usize = 8 + 8 + 8 + 8 + 4 + 8 + 8 + 4 + 8 + 8;

impl RootSlot {
    /// Renders the slot as a full page (body + CRC, zero padded).
    pub fn encode(&self) -> [u8; PAGE_BYTES] {
        let mut body = Vec::with_capacity(SLOT_BODY_LEN + 4);
        body.extend_from_slice(&SLOT_MAGIC);
        put_u64(&mut body, self.generation);
        put_u64(&mut body, self.table_page);
        put_u64(&mut body, self.table_len);
        put_u32(&mut body, self.table_crc);
        put_u64(&mut body, self.meta_page);
        put_u64(&mut body, self.meta_len);
        put_u32(&mut body, self.meta_crc);
        put_u64(&mut body, self.file_pages);
        put_u64(&mut body, self.nonzero_lines);
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        let mut page = [0u8; PAGE_BYTES];
        page[..body.len()].copy_from_slice(&body);
        page
    }

    /// Parses a slot page; `None` on any damage (bad magic, short page,
    /// CRC mismatch) — the caller treats an unparseable slot as absent
    /// and falls back to the other one.
    pub fn decode(page: &[u8]) -> Option<RootSlot> {
        if page.len() < SLOT_BODY_LEN + 4 {
            return None;
        }
        let mut c = Cursor::new(page);
        if c.take(8)? != SLOT_MAGIC {
            return None;
        }
        let slot = RootSlot {
            generation: c.u64()?,
            table_page: c.u64()?,
            table_len: c.u64()?,
            table_crc: c.u32()?,
            meta_page: c.u64()?,
            meta_len: c.u64()?,
            meta_crc: c.u32()?,
            file_pages: c.u64()?,
            nonzero_lines: c.u64()?,
        };
        let stored_crc = c.u32()?;
        if crc32(&page[..SLOT_BODY_LEN]) != stored_crc {
            return None;
        }
        Some(slot)
    }

    /// Pages spanned by a byte run of `len` starting at `page`.
    pub fn run_pages(len: u64) -> u64 {
        len.div_ceil(PAGE_BYTES as u64)
    }
}

// ---------------------------------------------------------------------
// Page-table serialization
// ---------------------------------------------------------------------

/// Serializes a logical→physical page table as a sorted pair list
/// (count, then `(logical, physical)` u64 pairs) — sorted so the bytes,
/// and hence the table CRC and the whole image, are deterministic.
pub fn encode_table(table: &std::collections::HashMap<u64, u64>) -> Vec<u8> {
    let mut pairs: Vec<(u64, u64)> = table.iter().map(|(&l, &p)| (l, p)).collect();
    pairs.sort_unstable();
    let mut out = Vec::with_capacity(8 + pairs.len() * 16);
    put_u64(&mut out, pairs.len() as u64);
    for (logical, phys) in pairs {
        put_u64(&mut out, logical);
        put_u64(&mut out, phys);
    }
    out
}

/// Parses a serialized page table; `None` on malformed bytes.
pub fn decode_table(bytes: &[u8]) -> Option<std::collections::HashMap<u64, u64>> {
    let mut c = Cursor::new(bytes);
    let count = c.u64()?;
    if count > (bytes.len() as u64 - 8) / 16 {
        return None;
    }
    let mut table = std::collections::HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let logical = c.u64()?;
        let phys = c.u64()?;
        table.insert(logical, phys);
    }
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn crc32_known_vectors() {
        // Classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_roundtrip_and_damage() {
        let page = encode_header();
        assert_eq!(decode_header(&page), Ok(()));
        let mut torn = page;
        torn[3] ^= 0x40;
        assert_eq!(decode_header(&torn), Err(HeaderError::BadMagic));
        let mut flipped = page;
        flipped[9] ^= 1; // version byte: CRC catches it first
        assert_eq!(decode_header(&flipped), Err(HeaderError::BadCrc));
        assert_eq!(decode_header(&page[..8]), Err(HeaderError::Truncated));
    }

    #[test]
    fn slot_roundtrip() {
        let slot = RootSlot {
            generation: 7,
            table_page: 3,
            table_len: 40,
            table_crc: 0xDEAD,
            meta_page: 4,
            meta_len: 100,
            meta_crc: 0xBEEF,
            file_pages: 9,
            nonzero_lines: 12,
        };
        let page = slot.encode();
        assert_eq!(RootSlot::decode(&page), Some(slot));
    }

    #[test]
    fn damaged_slot_decodes_to_none() {
        let slot = RootSlot {
            generation: 1,
            table_page: 3,
            table_len: 8,
            table_crc: 0,
            meta_page: 0,
            meta_len: 0,
            meta_crc: 0,
            file_pages: 4,
            nonzero_lines: 0,
        };
        let page = slot.encode();
        for damage in [0usize, 8, 20, SLOT_BODY_LEN] {
            let mut bad = page;
            bad[damage] ^= 0xFF;
            assert_eq!(RootSlot::decode(&bad), None, "byte {damage}");
        }
        assert_eq!(RootSlot::decode(&[0u8; PAGE_BYTES]), None, "zero page");
        assert_eq!(RootSlot::decode(&page[..16]), None, "short page");
    }

    #[test]
    fn generation_comparison_wraps() {
        assert!(newer_gen(2, 1));
        assert!(!newer_gen(1, 2));
        assert!(!newer_gen(5, 5));
        // Across the wraparound, 0 is newer than u64::MAX.
        assert!(newer_gen(0, u64::MAX));
        assert!(!newer_gen(u64::MAX, 0));
    }

    #[test]
    fn slot_page_alternates() {
        assert_eq!(slot_page(0), 1);
        assert_eq!(slot_page(1), 2);
        assert_eq!(slot_page(2), 1);
        assert_eq!(slot_page(u64::MAX), 2);
    }

    #[test]
    fn table_roundtrip_is_sorted_and_deterministic() {
        let mut table = HashMap::new();
        for p in [9u64, 3, 77, 1] {
            table.insert(p, p + 100);
        }
        let a = encode_table(&table);
        let b = encode_table(&table.clone());
        assert_eq!(a, b, "serialization is order-independent");
        assert_eq!(decode_table(&a), Some(table));
    }

    #[test]
    fn malformed_table_rejected() {
        assert_eq!(decode_table(&[]), None);
        let mut lying = Vec::new();
        put_u64(&mut lying, u64::MAX); // claims 2^64 entries
        assert_eq!(decode_table(&lying), None);
        let mut short = Vec::new();
        put_u64(&mut short, 2);
        put_u64(&mut short, 1);
        assert_eq!(decode_table(&short), None, "truncated pair list");
    }
}
