//! Non-volatile memory substrate: the reproduction's stand-in for NVMain.
//!
//! The paper evaluates on Gem5 + NVMain modelling a 16 GB DDR-based PCM
//! DIMM (Table II). This crate provides the equivalent memory-side model:
//!
//! * [`addr`] — line-granular physical addressing shared by every layer.
//! * [`store`] — the *functional* NVM: a sparse, zero-filled map of 64 B
//!   lines, with snapshot/restore for crash experiments and an explicit
//!   tampering interface for the attacker (NVM contents are untrusted in
//!   the threat model, §II-A).
//! * [`timing`] — the *timing* NVM: banked PCM with the paper's
//!   `tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns` parameters,
//!   row-buffer hits and a tFAW activation window.
//! * [`wpq`] — the write-pending queue: 64 tagged entries for user data and
//!   10 untagged entries for security metadata (Table II), inside the ADR
//!   persistence domain.
//! * [`controller`] — ties store + timing + WPQ into the memory-controller
//!   back end the simulator calls into, with per-kind access statistics.
//! * [`fault`] — injectable media faults and the 8-byte atomic-persist
//!   model: torn writes for crashes that interrupt an ADR flush, plus bit
//!   flips, stuck-at bytes, and dropped WPQ entries — extended to the
//!   durable path with torn root slots, torn pages, stale-slot bit rot,
//!   and truncated tails applied to a closed image file.
//! * [`backend`] / [`layout`] / [`checkpoint`] — the durable path: a
//!   [`backend::Backend`] trait over the in-memory map and a page-granular
//!   [`checkpoint::FileBackend`] with copy-on-write updates and dual
//!   CRC-guarded root slots, so a SIGKILLed process reopens the image and
//!   recovers from genuinely persisted bytes.
//!
//! Timing and function are deliberately separated: writes become durable
//! (visible in the [`store::NvmStore`]) the moment they enter the WPQ —
//! because ADR guarantees the WPQ drains on power failure — while the
//! timing model still charges bank occupancy and queue stalls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod backend;
pub mod checkpoint;
pub mod controller;
pub mod fault;
pub mod layout;
pub mod store;
pub mod timing;
pub mod wpq;

pub use addr::{Cycle, LineAddr, LINE_BYTES};
pub use backend::{Backend, IoError, MemBackend, OpenError};
pub use checkpoint::FileBackend;
pub use controller::{AccessKind, MemStats, MemoryController};
pub use fault::{
    apply_durable, DurableFault, DurableFaultRecord, FaultPlan, FaultRecord, NvmFault, TornPrefix,
    PERSIST_ATOM_BYTES, WORDS_PER_LINE,
};
pub use store::{HistoryStats, NvmStore, DEFAULT_HISTORY_CAP};
pub use timing::PcmCounters;
pub use wpq::WpqStats;
