//! Banked PCM timing model with the paper's latency parameters.
//!
//! Table II models the PCM DIMM with
//! `tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns`. At the 2 GHz
//! core clock this is `96/30/26/100/15/600` cycles. The model covers the
//! effects that matter to the evaluation's *relative* numbers:
//!
//! * per-bank occupancy — extra metadata traffic queues behind user data;
//! * row-buffer hits — sequential metadata walks are cheaper than random;
//! * the long PCM write recovery (`tWR` = 300 ns) — why write-heavy schemes
//!   (PLP persisting whole branches) hurt so much;
//! * the `tFAW` activation window and write→read turnaround (`tWTR`).

use crate::addr::{Cycle, LineAddr};
use std::collections::VecDeque;

/// PCM timing parameters in *cycles* (see [`PcmTiming::paper_2ghz`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcmTiming {
    /// Row activate-to-column latency.
    pub t_rcd: u64,
    /// Column read latency.
    pub t_cl: u64,
    /// Column write delay.
    pub t_cwd: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Write-to-read turnaround.
    pub t_wtr: u64,
    /// Write recovery (the dominant PCM cost).
    pub t_wr: u64,
}

impl PcmTiming {
    /// The paper's Table II parameters converted to 2 GHz cycles.
    pub fn paper_2ghz() -> Self {
        Self {
            t_rcd: 96,
            t_cl: 30,
            t_cwd: 26,
            t_faw: 100,
            t_wtr: 15,
            t_wr: 600,
        }
    }

    /// A fast uniform model for unit tests (1-cycle everything).
    pub fn uniform(latency: u64) -> Self {
        Self {
            t_rcd: latency,
            t_cl: latency,
            t_cwd: latency,
            t_faw: 0,
            t_wtr: 0,
            t_wr: latency,
        }
    }
}

impl Default for PcmTiming {
    fn default() -> Self {
        Self::paper_2ghz()
    }
}

/// Result of scheduling one device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled {
    /// Cycle the device began servicing the request.
    pub start: Cycle,
    /// Cycle the request's data transfer completed (read data available /
    /// write data accepted).
    pub done: Cycle,
    /// Whether the access hit the open row buffer.
    pub row_hit: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastOp {
    None,
    Read,
    Write,
}

#[derive(Debug, Clone)]
struct Bank {
    busy_until: Cycle,
    open_row: Option<u64>,
    last_op: LastOp,
}

impl Bank {
    fn new() -> Self {
        Self {
            busy_until: 0,
            open_row: None,
            last_op: LastOp::None,
        }
    }
}

/// Lifetime access counters for a [`PcmDevice`].
///
/// Replaces the old anonymous `(reads, writes, row_hits)` tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcmCounters {
    /// Read transactions scheduled.
    pub reads: u64,
    /// Write transactions scheduled.
    pub writes: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
}

/// The banked PCM device timing engine.
///
/// # Example
///
/// ```
/// use scue_nvm::timing::{PcmDevice, PcmTiming};
/// use scue_nvm::LineAddr;
///
/// let mut dev = PcmDevice::new(PcmTiming::paper_2ghz(), 16, 64);
/// let first = dev.schedule_read(LineAddr::new(0), 0);
/// let second = dev.schedule_read(LineAddr::new(1), first.done);
/// assert!(second.row_hit, "adjacent line in the same row hits the row buffer");
/// assert!(second.done - second.start < first.done - first.start);
/// ```
#[derive(Debug, Clone)]
pub struct PcmDevice {
    timing: PcmTiming,
    banks: Vec<Bank>,
    lines_per_row: u64,
    activates: VecDeque<Cycle>,
    reads: u64,
    writes: u64,
    row_hits: u64,
}

impl PcmDevice {
    /// Creates a device with `bank_count` banks and rows of
    /// `lines_per_row` lines.
    ///
    /// # Panics
    ///
    /// Panics if `bank_count` or `lines_per_row` is zero.
    pub fn new(timing: PcmTiming, bank_count: usize, lines_per_row: u64) -> Self {
        assert!(bank_count > 0, "need at least one bank");
        assert!(lines_per_row > 0, "need at least one line per row");
        Self {
            timing,
            banks: (0..bank_count).map(|_| Bank::new()).collect(),
            lines_per_row,
            activates: VecDeque::new(),
            reads: 0,
            writes: 0,
            row_hits: 0,
        }
    }

    /// Device with the paper's configuration: 16 banks, 4 KB rows.
    pub fn paper() -> Self {
        Self::new(PcmTiming::paper_2ghz(), 16, 64)
    }

    /// The timing parameters in use.
    pub fn timing(&self) -> &PcmTiming {
        &self.timing
    }

    /// Lifetime access counters.
    pub fn counters(&self) -> PcmCounters {
        PcmCounters {
            reads: self.reads,
            writes: self.writes,
            row_hits: self.row_hits,
        }
    }

    fn bank_and_row(&self, addr: LineAddr) -> (usize, u64) {
        // Row-interleaved mapping: a whole row lives in one bank, so
        // sequential lines enjoy row-buffer hits while consecutive rows
        // spread across banks.
        let row = addr.raw() / self.lines_per_row;
        let bank = (row % self.banks.len() as u64) as usize;
        (bank, row)
    }

    /// Earliest cycle at which a new row activate may issue, honouring the
    /// four-activate window, and records the activate.
    fn activate_at(&mut self, earliest: Cycle) -> Cycle {
        let t_faw = self.timing.t_faw;
        if t_faw == 0 {
            return earliest;
        }
        // Drop activates that left the window.
        while self.activates.len() >= 4 {
            match self.activates.front() {
                Some(&oldest) if oldest + t_faw <= earliest => {
                    self.activates.pop_front();
                }
                _ => break,
            }
        }
        let at = if self.activates.len() >= 4 {
            match self.activates.pop_front() {
                Some(oldest) => oldest + t_faw,
                None => earliest, // unreachable: len >= 4 just checked
            }
        } else {
            earliest
        };
        self.activates.push_back(at);
        at
    }

    /// Schedules a read of `addr` arriving at the controller at `now`.
    pub fn schedule_read(&mut self, addr: LineAddr, now: Cycle) -> Scheduled {
        self.reads += 1;
        let (bank_idx, row) = self.bank_and_row(addr);
        let t = self.timing;
        let row_hit = self.banks[bank_idx].open_row == Some(row);
        let bank = &self.banks[bank_idx];
        let mut earliest = now.max(bank.busy_until);
        if bank.last_op == LastOp::Write {
            earliest += t.t_wtr;
        }
        let (start, done) = if row_hit {
            let start = earliest;
            (start, start + t.t_cl)
        } else {
            let start = self.activate_at(earliest);
            (start, start + t.t_rcd + t.t_cl)
        };
        if row_hit {
            self.row_hits += 1;
        }
        let bank = &mut self.banks[bank_idx];
        bank.busy_until = done;
        bank.open_row = Some(row);
        bank.last_op = LastOp::Read;
        Scheduled {
            start,
            done,
            row_hit,
        }
    }

    /// Schedules a write of `addr` issued to the device at `now`. `done` is
    /// when the device accepted the data; the bank stays busy through the
    /// PCM write-recovery time beyond that.
    pub fn schedule_write(&mut self, addr: LineAddr, now: Cycle) -> Scheduled {
        self.writes += 1;
        let (bank_idx, row) = self.bank_and_row(addr);
        let t = self.timing;
        let row_hit = self.banks[bank_idx].open_row == Some(row);
        let earliest = now.max(self.banks[bank_idx].busy_until);
        let (start, done) = if row_hit {
            let start = earliest;
            (start, start + t.t_cwd)
        } else {
            let start = self.activate_at(earliest);
            (start, start + t.t_rcd + t.t_cwd)
        };
        if row_hit {
            self.row_hits += 1;
        }
        let bank = &mut self.banks[bank_idx];
        bank.busy_until = done + t.t_wr;
        bank.open_row = Some(row);
        bank.last_op = LastOp::Write;
        Scheduled {
            start,
            done,
            row_hit,
        }
    }

    /// Cycle at which every bank is idle (used to time WPQ drain / ADR
    /// flush completion).
    pub fn all_idle_at(&self) -> Cycle {
        self.banks.iter().map(|b| b.busy_until).max().unwrap_or(0)
    }

    /// Clears bank state (across reboots) without clearing counters.
    pub fn reset_occupancy(&mut self) {
        for bank in &mut self.banks {
            *bank = Bank::new();
        }
        self.activates.clear();
    }
}

impl Default for PcmDevice {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> PcmDevice {
        PcmDevice::paper()
    }

    #[test]
    fn read_miss_costs_rcd_plus_cl() {
        let mut d = dev();
        let s = d.schedule_read(LineAddr::new(0), 0);
        assert!(!s.row_hit);
        assert_eq!(s.done, 96 + 30);
    }

    #[test]
    fn read_hit_costs_cl_only() {
        let mut d = dev();
        let first = d.schedule_read(LineAddr::new(0), 0);
        let s = d.schedule_read(LineAddr::new(1), first.done);
        assert!(s.row_hit);
        assert_eq!(s.done - s.start, 30);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dev();
        let a = d.schedule_read(LineAddr::new(0), 0); // row 0 -> bank 0
        let b = d.schedule_read(LineAddr::new(64), 0); // row 1 -> bank 1
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 0, "distinct banks service in parallel");
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = dev();
        let a = d.schedule_read(LineAddr::new(0), 0); // row 0 -> bank 0
        let b = d.schedule_read(LineAddr::new(64 * 16), 0); // row 16 -> bank 0
        assert!(b.start >= a.done, "same bank must wait");
    }

    #[test]
    fn write_recovery_blocks_bank() {
        let mut d = dev();
        let w = d.schedule_write(LineAddr::new(0), 0);
        let r = d.schedule_read(LineAddr::new(0), w.done);
        // Bank busy through write recovery plus write->read turnaround.
        assert!(r.start >= w.done + 600, "tWR must gate the next access");
    }

    #[test]
    fn wtr_turnaround_applied() {
        let mut d = dev();
        let w = d.schedule_write(LineAddr::new(0), 0);
        let r = d.schedule_read(LineAddr::new(0), 0);
        let gap = r.start - (w.done + 600);
        assert_eq!(gap, 15, "tWTR applies after write recovery");
    }

    #[test]
    fn tfaw_limits_activate_burst() {
        let mut d = dev();
        // Five row misses on five different banks, all at cycle 0: the
        // fifth activate must wait out the tFAW window.
        let mut starts: Vec<Cycle> = (0..5)
            .map(|i| d.schedule_read(LineAddr::new(i * 64), 0).start)
            .collect();
        starts.sort_unstable();
        assert_eq!(starts[3], 0, "first four activates are free");
        assert_eq!(starts[4], 100, "fifth activate waits tFAW");
    }

    #[test]
    fn counters_track_accesses() {
        let mut d = dev();
        d.schedule_read(LineAddr::new(0), 0);
        d.schedule_write(LineAddr::new(0), 0);
        let c = d.counters();
        assert_eq!((c.reads, c.writes), (1, 1));
    }

    #[test]
    fn all_idle_tracks_latest_bank() {
        let mut d = dev();
        let w = d.schedule_write(LineAddr::new(3), 0);
        assert_eq!(d.all_idle_at(), w.done + 600);
    }

    #[test]
    fn reset_occupancy_frees_banks() {
        let mut d = dev();
        d.schedule_write(LineAddr::new(0), 0);
        d.reset_occupancy();
        let r = d.schedule_read(LineAddr::new(0), 0);
        assert_eq!(r.start, 0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = PcmDevice::new(PcmTiming::paper_2ghz(), 0, 64);
    }
}
