//! The write-pending queue (WPQ) inside the ADR persistence domain.
//!
//! Table II configures two queues: 64 tagged entries for user data and 10
//! untagged entries for security metadata. Writes become *durable* the
//! moment they are accepted into the WPQ — Intel ADR guarantees the queue
//! drains to media on power failure — so a write's "persist latency" is
//! its queue-acceptance time, while the media write itself drains in the
//! background and only matters when the queue backs up.

use crate::addr::{Cycle, LineAddr};
use crate::timing::PcmDevice;
use std::collections::VecDeque;

/// Outcome of enqueueing one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Enqueued {
    /// Cycle the entry was accepted into the queue (the durability point,
    /// and the stall seen by the writer if the queue was full).
    pub accepted: Cycle,
    /// Cycle the underlying media write finishes draining.
    pub drained: Cycle,
}

/// Lifetime statistics for one write-pending queue.
///
/// Replaces the old anonymous `(enqueued, full_stalls, max_occupancy)`
/// tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpqStats {
    /// Total writes enqueued (including coalesced ones).
    pub enqueued: u64,
    /// Enqueues that stalled on a full queue.
    pub full_stalls: u64,
    /// Peak simultaneous occupancy.
    pub max_occupancy: usize,
    /// Writes that merged into an already-pending entry.
    pub coalesced: u64,
    /// Explicit flush barriers (checkpoint epoch boundaries) observed.
    pub barriers: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: LineAddr,
    accepted: Cycle,
    drained: Cycle,
}

/// One WPQ entry still draining to media at a given cycle — the unit the
/// fault injector tears when a crash interrupts the ADR flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// The line being written.
    pub addr: LineAddr,
    /// Cycle the entry was accepted into the queue.
    pub accepted: Cycle,
    /// Cycle the media write would have finished draining.
    pub drained: Cycle,
}

/// A fixed-capacity write-pending queue backed by a [`PcmDevice`].
///
/// # Example
///
/// ```
/// use scue_nvm::timing::PcmDevice;
/// use scue_nvm::wpq::WritePendingQueue;
/// use scue_nvm::LineAddr;
///
/// let mut dev = PcmDevice::paper();
/// let mut wpq = WritePendingQueue::new(4);
/// let e = wpq.enqueue(LineAddr::new(0), 0, &mut dev);
/// assert_eq!(e.accepted, 0, "empty queue accepts immediately");
/// assert!(e.drained > 0, "media write drains later");
/// ```
#[derive(Debug, Clone)]
pub struct WritePendingQueue {
    capacity: usize,
    entries: VecDeque<Entry>,
    full_stalls: u64,
    enqueued: u64,
    coalesced: u64,
    max_occupancy: usize,
    barriers: u64,
}

impl WritePendingQueue {
    /// Creates a queue holding at most `capacity` in-flight writes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ capacity must be non-zero");
        Self {
            capacity,
            entries: VecDeque::new(),
            full_stalls: 0,
            enqueued: 0,
            coalesced: 0,
            max_occupancy: 0,
            barriers: 0,
        }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries still draining at `now`.
    pub fn occupancy(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.drained > now).count()
    }

    /// Lifetime queue statistics.
    pub fn stats(&self) -> WpqStats {
        WpqStats {
            enqueued: self.enqueued,
            full_stalls: self.full_stalls,
            max_occupancy: self.max_occupancy,
            coalesced: self.coalesced,
            barriers: self.barriers,
        }
    }

    /// Writes that merged into an already-pending entry.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    fn retire(&mut self, now: Cycle) {
        // Writes to different banks drain out of order, so a slot frees
        // whenever *any* entry has drained, not just the oldest.
        self.entries.retain(|e| e.drained > now);
    }

    /// Enqueues a write to `addr` arriving at `now`, scheduling the media
    /// write on `device`. If the queue is full the writer stalls until the
    /// earliest-draining entry frees a slot.
    pub fn enqueue(&mut self, addr: LineAddr, now: Cycle, device: &mut PcmDevice) -> Enqueued {
        self.retire(now);
        // Same-address coalescing: a write to a line already pending
        // merges into the queued entry — no new slot, no extra media
        // write (standard write-combining WPQ behaviour).
        if let Some(entry) = self.entries.iter().find(|e| e.addr == addr) {
            self.enqueued += 1;
            self.coalesced += 1;
            return Enqueued {
                accepted: now,
                drained: entry.drained,
            };
        }
        let accepted = if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            let idx = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.drained)
                .map(|(idx, _)| idx);
            match idx.and_then(|idx| self.entries.remove(idx)) {
                Some(evicted) => evicted.drained.max(now),
                // Unreachable while capacity > 0 (enforced in `new`), but
                // degrade to "no stall" rather than panic.
                None => now,
            }
        } else {
            now
        };
        let sched = device.schedule_write(addr, accepted);
        let drained = sched.done;
        self.entries.push_back(Entry {
            addr,
            accepted,
            drained,
        });
        self.enqueued += 1;
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        Enqueued { accepted, drained }
    }

    /// Entries still draining at `now`, with their accept/drain cycles —
    /// the candidates for torn writes when a crash at `now` interrupts the
    /// ADR flush.
    pub fn in_flight_at(&self, now: Cycle) -> Vec<InFlight> {
        self.entries
            .iter()
            .filter(|e| e.drained > now)
            .map(|e| InFlight {
                addr: e.addr,
                accepted: e.accepted,
                drained: e.drained,
            })
            .collect()
    }

    /// Cycle by which every queued entry has drained (ADR flush horizon).
    pub fn drained_at(&self) -> Cycle {
        self.entries.iter().map(|e| e.drained).max().unwrap_or(0)
    }

    /// An explicit flush barrier — the checkpoint epoch boundary. Waits
    /// for every queued entry to drain (functionally they are already
    /// durable at acceptance; this charges the timing), retires them,
    /// and counts the barrier. Returns the cycle the flush completes.
    pub fn barrier(&mut self, now: Cycle) -> Cycle {
        let horizon = self.drained_at().max(now);
        self.retire(horizon);
        self.barriers += 1;
        horizon
    }

    /// Empties the queue (after a crash the ADR flush has already made the
    /// contents durable in the functional store).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::PcmTiming;

    fn fast_device() -> PcmDevice {
        // One bank so writes serialize and the queue actually fills.
        PcmDevice::new(PcmTiming::uniform(100), 1, 64)
    }

    #[test]
    fn empty_queue_accepts_immediately() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(2);
        let e = wpq.enqueue(LineAddr::new(0), 50, &mut dev);
        assert_eq!(e.accepted, 50);
    }

    #[test]
    fn full_queue_stalls_writer() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(2);
        // Three back-to-back writes into a 2-deep queue on one bank.
        let a = wpq.enqueue(LineAddr::new(0), 0, &mut dev);
        let b = wpq.enqueue(LineAddr::new(64), 0, &mut dev);
        let c = wpq.enqueue(LineAddr::new(128), 0, &mut dev);
        assert_eq!(a.accepted, 0);
        assert_eq!(b.accepted, 0);
        assert_eq!(
            c.accepted, a.drained,
            "third write waits for the oldest drain"
        );
        let s = wpq.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.full_stalls, 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn retire_frees_slots() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(1);
        let a = wpq.enqueue(LineAddr::new(0), 0, &mut dev);
        // Arrive long after the first write drained: no stall.
        let b = wpq.enqueue(LineAddr::new(64), a.drained + 10_000, &mut dev);
        assert_eq!(b.accepted, a.drained + 10_000);
        assert_eq!(wpq.stats().full_stalls, 0);
    }

    #[test]
    fn occupancy_counts_in_flight() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(8);
        wpq.enqueue(LineAddr::new(0), 0, &mut dev);
        wpq.enqueue(LineAddr::new(64), 0, &mut dev);
        assert_eq!(wpq.occupancy(0), 2);
        assert_eq!(wpq.occupancy(wpq.drained_at()), 0);
    }

    #[test]
    fn clear_empties_queue() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(2);
        wpq.enqueue(LineAddr::new(0), 0, &mut dev);
        wpq.clear();
        assert_eq!(wpq.occupancy(0), 0);
        assert_eq!(wpq.drained_at(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = WritePendingQueue::new(0);
    }

    #[test]
    fn barrier_retires_everything_and_counts() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(4);
        let a = wpq.enqueue(LineAddr::new(0), 0, &mut dev);
        let b = wpq.enqueue(LineAddr::new(64), 0, &mut dev);
        let horizon = wpq.barrier(0);
        assert_eq!(horizon, a.drained.max(b.drained));
        assert_eq!(wpq.occupancy(horizon), 0);
        assert_eq!(wpq.stats().barriers, 1);
        // A barrier on an empty queue completes at `now`.
        assert_eq!(wpq.barrier(horizon + 5), horizon + 5);
        assert_eq!(wpq.stats().barriers, 2);
    }

    #[test]
    fn in_flight_reports_accept_and_drain_cycles() {
        let mut dev = fast_device();
        let mut wpq = WritePendingQueue::new(4);
        let a = wpq.enqueue(LineAddr::new(0), 10, &mut dev);
        let inflight = wpq.in_flight_at(10);
        assert_eq!(inflight.len(), 1);
        assert_eq!(inflight[0].addr, LineAddr::new(0));
        assert_eq!(inflight[0].accepted, 10);
        assert_eq!(inflight[0].drained, a.drained);
        assert!(
            wpq.in_flight_at(a.drained).is_empty(),
            "drained entries gone"
        );
    }
}
