//! Injectable media faults and the 8-byte atomic-persist model.
//!
//! Real NVM persists in 8-byte atomic units: a power failure in the
//! middle of a 64 B cacheline flush leaves a *torn* line whose prefix of
//! 8-byte words carries the new content while the suffix still holds the
//! old content. The ADR contract normally hides this (the WPQ drains on
//! power failure), so tearing here models an ADR *failure* — the torture
//! harness injects it deliberately to check that every scheme either
//! recovers or detects the damage, never silently serves it.
//!
//! Besides torn writes the module models classic media faults: bit
//! flips, stuck-at bytes, and dropped writes (a WPQ entry that never
//! reached media). Each injection is described by a typed [`NvmFault`]
//! and acknowledged by a [`FaultRecord`] stating whether it actually
//! changed the image, so campaigns can tell "fault landed" from "fault
//! was a no-op" deterministically.

use crate::addr::{LineAddr, LINE_BYTES};
use crate::store::{Line, NvmStore};

/// NVM persists atomically in units of this many bytes (one machine word).
pub const PERSIST_ATOM_BYTES: usize = 8;

/// Number of 8-byte atomic-persist words in one 64 B line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / PERSIST_ATOM_BYTES;

/// One injectable media fault, addressed at line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmFault {
    /// A crash mid-flush: the first `words_new` 8-byte words of the line
    /// hold the latest write, the rest still hold the previous content.
    TornWrite {
        /// The line torn by the interrupted flush.
        addr: LineAddr,
        /// How many leading 8-byte words made it to media (0..=8).
        words_new: usize,
    },
    /// A single-bit upset in one stored byte.
    BitFlip {
        /// The affected line.
        addr: LineAddr,
        /// Byte offset within the line (0..64).
        byte: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// A byte whose cell is stuck at a fixed value.
    StuckAt {
        /// The affected line.
        addr: LineAddr,
        /// Byte offset within the line (0..64).
        byte: usize,
        /// The value the cell is stuck at.
        value: u8,
    },
    /// A write the WPQ accepted but that never reached media: the line
    /// reverts to its previous content.
    DroppedWrite {
        /// The line whose last write is dropped.
        addr: LineAddr,
    },
}

impl NvmFault {
    /// The line this fault targets.
    pub fn addr(&self) -> LineAddr {
        match *self {
            NvmFault::TornWrite { addr, .. }
            | NvmFault::BitFlip { addr, .. }
            | NvmFault::StuckAt { addr, .. }
            | NvmFault::DroppedWrite { addr } => addr,
        }
    }

    /// A short stable name for traces and JSON.
    pub fn kind_name(&self) -> &'static str {
        match self {
            NvmFault::TornWrite { .. } => "torn_write",
            NvmFault::BitFlip { .. } => "bit_flip",
            NvmFault::StuckAt { .. } => "stuck_at",
            NvmFault::DroppedWrite { .. } => "dropped_write",
        }
    }
}

/// What to break when a crash is injected.
///
/// `tear_in_flight` asks the controller to tear every WPQ entry still
/// draining at the crash cycle (modelling an ADR failure); `faults` are
/// explicit media faults applied after the crash settles.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Tear WPQ entries still draining at the crash cycle.
    pub tear_in_flight: bool,
    /// Explicit media faults applied to the post-crash image, in order.
    pub faults: Vec<NvmFault>,
}

impl FaultPlan {
    /// A fault-free crash — identical to the classic clean-crash model.
    pub fn none() -> Self {
        Self::default()
    }

    /// A crash that tears all in-flight WPQ entries.
    pub fn tearing() -> Self {
        Self {
            tear_in_flight: true,
            faults: Vec::new(),
        }
    }

    /// Adds one explicit media fault to the plan.
    pub fn with_fault(mut self, fault: NvmFault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// Acknowledgement of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault that was requested.
    pub fault: NvmFault,
    /// Whether the image actually changed (a stuck-at matching the stored
    /// byte, or a torn write whose halves agree, is a no-op).
    pub applied: bool,
}

/// Builds the torn image of a line: the first `words_new` 8-byte words
/// from `new`, the rest from `old`. `words_new` is clamped to the line.
pub fn torn_line(new: &Line, old: &Line, words_new: usize) -> Line {
    let split = words_new.min(WORDS_PER_LINE) * PERSIST_ATOM_BYTES;
    let mut out = *old;
    out[..split].copy_from_slice(&new[..split]);
    out
}

/// Applies one fault to the functional image, returning a record of
/// whether anything changed.
///
/// Torn and dropped writes need the store's history journal (see
/// [`NvmStore::track_history`]) to know the pre-write content; without
/// it, or when the line was never overwritten, they report
/// `applied: false`.
pub fn apply(store: &mut NvmStore, fault: NvmFault) -> FaultRecord {
    let applied = match fault {
        NvmFault::TornWrite { addr, words_new } => match store.previous_line(addr) {
            Some(old) => {
                let new = store.read_line(addr);
                let torn = torn_line(&new, &old, words_new);
                if torn == new {
                    false
                } else {
                    store.tamper_line(addr, torn);
                    true
                }
            }
            None => false,
        },
        NvmFault::BitFlip { addr, byte, bit } => {
            let mut line = store.read_line(addr);
            line[byte % LINE_BYTES] ^= 1 << (bit % 8);
            store.tamper_line(addr, line);
            true
        }
        NvmFault::StuckAt { addr, byte, value } => {
            let mut line = store.read_line(addr);
            let byte = byte % LINE_BYTES;
            if line[byte] == value {
                false
            } else {
                line[byte] = value;
                store.tamper_line(addr, line);
                true
            }
        }
        NvmFault::DroppedWrite { addr } => match store.previous_line(addr) {
            Some(old) if old != store.read_line(addr) => {
                store.tamper_line(addr, old);
                true
            }
            _ => false,
        },
    };
    FaultRecord { fault, applied }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_line_splits_at_word_granularity() {
        let new = [0xAA; LINE_BYTES];
        let old = [0x55; LINE_BYTES];
        let torn = torn_line(&new, &old, 3);
        assert_eq!(&torn[..24], &[0xAA; 24]);
        assert_eq!(&torn[24..], &[0x55; 40]);
        assert_eq!(torn_line(&new, &old, 0), old);
        assert_eq!(torn_line(&new, &old, 8), new);
        assert_eq!(torn_line(&new, &old, 99), new, "clamped past the line");
    }

    #[test]
    fn torn_write_needs_history() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(1);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::TornWrite {
                addr: a,
                words_new: 4,
            },
        );
        assert!(!rec.applied, "no history journal, tear is a no-op");
        assert_eq!(store.read_line(a), [2; LINE_BYTES]);
    }

    #[test]
    fn torn_write_mixes_old_and_new() {
        let mut store = NvmStore::new();
        store.track_history(true);
        let a = LineAddr::new(1);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::TornWrite {
                addr: a,
                words_new: 2,
            },
        );
        assert!(rec.applied);
        let line = store.read_line(a);
        assert_eq!(&line[..16], &[2; 16]);
        assert_eq!(&line[16..], &[1; 48]);
    }

    #[test]
    fn full_tear_is_a_noop() {
        let mut store = NvmStore::new();
        store.track_history(true);
        let a = LineAddr::new(1);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::TornWrite {
                addr: a,
                words_new: 8,
            },
        );
        assert!(!rec.applied, "all words made it: nothing torn");
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(2);
        store.write_line(a, [0; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::BitFlip {
                addr: a,
                byte: 5,
                bit: 3,
            },
        );
        assert!(rec.applied);
        let line = store.read_line(a);
        assert_eq!(line[5], 1 << 3);
        assert!(line.iter().enumerate().all(|(i, &b)| i == 5 || b == 0));
    }

    #[test]
    fn stuck_at_matching_value_is_noop() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(3);
        store.write_line(a, [7; LINE_BYTES]);
        let noop = apply(
            &mut store,
            NvmFault::StuckAt {
                addr: a,
                byte: 0,
                value: 7,
            },
        );
        assert!(!noop.applied);
        let hit = apply(
            &mut store,
            NvmFault::StuckAt {
                addr: a,
                byte: 0,
                value: 0xFF,
            },
        );
        assert!(hit.applied);
        assert_eq!(store.read_line(a)[0], 0xFF);
    }

    #[test]
    fn dropped_write_reverts_to_previous() {
        let mut store = NvmStore::new();
        store.track_history(true);
        let a = LineAddr::new(4);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(&mut store, NvmFault::DroppedWrite { addr: a });
        assert!(rec.applied);
        assert_eq!(store.read_line(a), [1; LINE_BYTES]);
    }

    #[test]
    fn fault_accessors() {
        let f = NvmFault::BitFlip {
            addr: LineAddr::new(9),
            byte: 0,
            bit: 0,
        };
        assert_eq!(f.addr(), LineAddr::new(9));
        assert_eq!(f.kind_name(), "bit_flip");
    }
}
