//! Injectable media faults and the 8-byte atomic-persist model.
//!
//! Real NVM persists in 8-byte atomic units: a power failure in the
//! middle of a 64 B cacheline flush leaves a *torn* line whose prefix of
//! 8-byte words carries the new content while the suffix still holds the
//! old content. The ADR contract normally hides this (the WPQ drains on
//! power failure), so tearing here models an ADR *failure* — the torture
//! harness injects it deliberately to check that every scheme either
//! recovers or detects the damage, never silently serves it.
//!
//! Besides torn writes the module models classic media faults: bit
//! flips, stuck-at bytes, and dropped writes (a WPQ entry that never
//! reached media). Each injection is described by a typed [`NvmFault`]
//! and acknowledged by a [`FaultRecord`] stating whether it actually
//! changed the image, so campaigns can tell "fault landed" from "fault
//! was a no-op" deterministically.

use crate::addr::{LineAddr, LINE_BYTES};
use crate::store::{Line, NvmStore};

/// NVM persists atomically in units of this many bytes (one machine word).
pub const PERSIST_ATOM_BYTES: usize = 8;

/// Number of 8-byte atomic-persist words in one 64 B line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / PERSIST_ATOM_BYTES;

/// One injectable media fault, addressed at line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmFault {
    /// A crash mid-flush: the first `words_new` 8-byte words of the line
    /// hold the latest write, the rest still hold the previous content.
    TornWrite {
        /// The line torn by the interrupted flush.
        addr: LineAddr,
        /// How many leading 8-byte words made it to media (0..=8).
        words_new: usize,
    },
    /// A single-bit upset in one stored byte.
    BitFlip {
        /// The affected line.
        addr: LineAddr,
        /// Byte offset within the line (0..64).
        byte: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// A byte whose cell is stuck at a fixed value.
    StuckAt {
        /// The affected line.
        addr: LineAddr,
        /// Byte offset within the line (0..64).
        byte: usize,
        /// The value the cell is stuck at.
        value: u8,
    },
    /// A write the WPQ accepted but that never reached media: the line
    /// reverts to its previous content.
    DroppedWrite {
        /// The line whose last write is dropped.
        addr: LineAddr,
    },
}

impl NvmFault {
    /// The line this fault targets.
    pub fn addr(&self) -> LineAddr {
        match *self {
            NvmFault::TornWrite { addr, .. }
            | NvmFault::BitFlip { addr, .. }
            | NvmFault::StuckAt { addr, .. }
            | NvmFault::DroppedWrite { addr } => addr,
        }
    }

    /// A short stable name for traces and JSON.
    pub fn kind_name(&self) -> &'static str {
        match self {
            NvmFault::TornWrite { .. } => "torn_write",
            NvmFault::BitFlip { .. } => "bit_flip",
            NvmFault::StuckAt { .. } => "stuck_at",
            NvmFault::DroppedWrite { .. } => "dropped_write",
        }
    }
}

/// Abstract description of how far the ADR flush got before power died,
/// phrased in queue positions rather than cycles: the first
/// `fully_drained` metadata-WPQ entries (FIFO order) committed whole,
/// the next entry committed only its first `words_new` 8-byte words,
/// and every entry behind it committed nothing.
///
/// This is the shape the crash model checker emits — its abstract
/// tearing nondeterminism enumerates exactly these prefixes — and
/// [`FaultPlan::tearing_prefix`] lowers it onto the concrete controller
/// so an abstract torn-write case replays against the real engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornPrefix {
    /// In-flight metadata entries (FIFO order) that committed whole.
    pub fully_drained: usize,
    /// Leading 8-byte words of the next entry that reached media (0..=8).
    pub words_new: usize,
}

/// What to break when a crash is injected.
///
/// `tear_in_flight` asks the controller to tear every WPQ entry still
/// draining at the crash cycle (modelling an ADR failure); `tear_prefix`
/// pins the tearing to an exact drain prefix instead (the model
/// checker's lowering — it wins over `tear_in_flight` when both are
/// set); `faults` are explicit media faults applied after the crash
/// settles.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Tear WPQ entries still draining at the crash cycle.
    pub tear_in_flight: bool,
    /// Tear the metadata WPQ at an exact abstract drain prefix.
    pub tear_prefix: Option<TornPrefix>,
    /// Explicit media faults applied to the post-crash image, in order.
    pub faults: Vec<NvmFault>,
}

impl FaultPlan {
    /// A fault-free crash — identical to the classic clean-crash model.
    pub fn none() -> Self {
        Self::default()
    }

    /// A crash that tears all in-flight WPQ entries.
    pub fn tearing() -> Self {
        Self {
            tear_in_flight: true,
            ..Self::default()
        }
    }

    /// A crash whose ADR flush stopped at the given abstract drain
    /// prefix of the metadata WPQ (the model checker's torn-write
    /// lowering).
    pub fn tearing_prefix(prefix: TornPrefix) -> Self {
        Self {
            tear_prefix: Some(prefix),
            ..Self::default()
        }
    }

    /// Adds one explicit media fault to the plan.
    pub fn with_fault(mut self, fault: NvmFault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// Acknowledgement of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault that was requested.
    pub fault: NvmFault,
    /// Whether the image actually changed (a stuck-at matching the stored
    /// byte, or a torn write whose halves agree, is a no-op).
    pub applied: bool,
}

/// Builds the torn image of a line: the first `words_new` 8-byte words
/// from `new`, the rest from `old`. `words_new` is clamped to the line.
pub fn torn_line(new: &Line, old: &Line, words_new: usize) -> Line {
    let split = words_new.min(WORDS_PER_LINE) * PERSIST_ATOM_BYTES;
    let mut out = *old;
    out[..split].copy_from_slice(&new[..split]);
    out
}

/// Applies one fault to the functional image, returning a record of
/// whether anything changed.
///
/// Torn and dropped writes need the store's history journal (see
/// [`NvmStore::track_history`]) to know the pre-write content; without
/// it, or when the line was never overwritten, they report
/// `applied: false`.
pub fn apply(store: &mut NvmStore, fault: NvmFault) -> FaultRecord {
    let applied = match fault {
        NvmFault::TornWrite { addr, words_new } => match store.previous_line(addr) {
            Some(old) => {
                let new = store.read_line(addr);
                let torn = torn_line(&new, &old, words_new);
                if torn == new {
                    false
                } else {
                    store.tamper_line(addr, torn);
                    true
                }
            }
            None => false,
        },
        NvmFault::BitFlip { addr, byte, bit } => {
            let mut line = store.read_line(addr);
            line[byte % LINE_BYTES] ^= 1 << (bit % 8);
            store.tamper_line(addr, line);
            true
        }
        NvmFault::StuckAt { addr, byte, value } => {
            let mut line = store.read_line(addr);
            let byte = byte % LINE_BYTES;
            if line[byte] == value {
                false
            } else {
                line[byte] = value;
                store.tamper_line(addr, line);
                true
            }
        }
        NvmFault::DroppedWrite { addr } => match store.previous_line(addr) {
            Some(old) if old != store.read_line(addr) => {
                store.tamper_line(addr, old);
                true
            }
            _ => false,
        },
    };
    FaultRecord { fault, applied }
}

/// Bytes of a root-slot page the durable injector considers "the slot":
/// generously covers the encoded body + CRC (the rest of the page is
/// zero padding).
const SLOT_DAMAGE_SPAN: usize = 128;

/// Damage applied to a *closed* durable image file — the storage-medium
/// extension of the [`NvmFault`] taxonomy. The crashtest harness applies
/// one of these between SIGKILL and reopen, modelling power-fail tearing
/// and media rot on the bytes that actually hit the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableFault {
    /// A commit interrupted mid-slot-write: only the first `words_new`
    /// 8-byte words of the newest root slot made it; the tail of the
    /// slot body is garbage. Open must fall back to the previous slot.
    TornRootSlot {
        /// Leading 8-byte words of the slot that persisted.
        words_new: usize,
    },
    /// A single-bit upset inside the newest root slot (stale-slot rot);
    /// the slot CRC catches it and open falls back.
    StaleSlotBitFlip {
        /// Byte offset within the slot body.
        byte: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// A committed data page whose tail is garbage (torn page program):
    /// the first `words_new` 8-byte words survive.
    TornPage {
        /// Which committed data page (in logical order, wrapped).
        nth: usize,
        /// Leading 8-byte words of the page that persisted.
        words_new: usize,
    },
    /// Whole pages chopped off the end of the file (lost tail after an
    /// interrupted append); slot validation detects the missing extent.
    TruncateTail {
        /// Pages removed from the end.
        pages: u64,
    },
}

impl DurableFault {
    /// A short stable name for traces and JSON.
    pub fn kind_name(&self) -> &'static str {
        match self {
            DurableFault::TornRootSlot { .. } => "torn_root_slot",
            DurableFault::StaleSlotBitFlip { .. } => "stale_slot_bit_flip",
            DurableFault::TornPage { .. } => "torn_page",
            DurableFault::TruncateTail { .. } => "truncate_tail",
        }
    }
}

/// Acknowledgement of one durable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableFaultRecord {
    /// The fault that was requested.
    pub fault: DurableFault,
    /// Whether the file actually changed.
    pub applied: bool,
}

/// Locates the page holding the newest decodable root slot (falling back
/// to slot position 1 when neither decodes — a torn slot is still the
/// right target).
fn newest_slot_page(path: &std::path::Path) -> Result<u64, crate::backend::IoError> {
    let gens = crate::checkpoint::FileBackend::peek_generations(path)?;
    Ok(match gens {
        [Some(a), Some(b)] => {
            if crate::layout::newer_gen(a, b) {
                1
            } else {
                2
            }
        }
        [Some(_), None] => 1,
        [None, Some(_)] => 2,
        [None, None] => 1,
    })
}

/// Applies one durable fault to a closed image file, returning whether
/// the bytes changed. The file is damaged in place; callers reopen it
/// afterwards and observe the typed degradation ([`crate::backend::OpenError`]
/// or slot fallback).
pub fn apply_durable(
    path: &std::path::Path,
    fault: DurableFault,
) -> Result<DurableFaultRecord, crate::backend::IoError> {
    use crate::backend::IoError;
    use crate::layout::PAGE_BYTES;
    use std::io::{Read, Seek, SeekFrom, Write};

    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| IoError::from_io("open image for fault", &e))?;
    let len = file
        .metadata()
        .map_err(|e| IoError::from_io("stat image", &e))?
        .len();

    let mut patch_page = |page_no: u64, edit: &mut dyn FnMut(&mut [u8])| -> Result<bool, IoError> {
        let off = page_no * PAGE_BYTES as u64;
        let mut buf = vec![0u8; PAGE_BYTES];
        file.seek(SeekFrom::Start(off))
            .map_err(|e| IoError::from_io("seek", &e))?;
        let mut filled = 0usize;
        while filled < PAGE_BYTES {
            match file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(IoError::from_io("read page", &e)),
            }
        }
        let before = buf.clone();
        edit(&mut buf);
        if buf == before {
            return Ok(false);
        }
        file.seek(SeekFrom::Start(off))
            .map_err(|e| IoError::from_io("seek", &e))?;
        file.write_all(&buf)
            .map_err(|e| IoError::from_io("write page", &e))?;
        file.sync_data()
            .map_err(|e| IoError::from_io("fsync", &e))?;
        Ok(true)
    };

    let applied = match fault {
        DurableFault::TornRootSlot { words_new } => {
            let page = newest_slot_page(path)?;
            let split = (words_new * PERSIST_ATOM_BYTES).min(SLOT_DAMAGE_SPAN);
            patch_page(page, &mut |buf| {
                for b in &mut buf[split..SLOT_DAMAGE_SPAN] {
                    *b = 0xEE;
                }
            })?
        }
        DurableFault::StaleSlotBitFlip { byte, bit } => {
            let page = newest_slot_page(path)?;
            let byte = byte % SLOT_DAMAGE_SPAN;
            patch_page(page, &mut |buf| {
                buf[byte] ^= 1 << (bit % 8);
            })?
        }
        DurableFault::TornPage { nth, words_new } => {
            // Target a page the newest checkpoint actually references, so
            // the damage is visible to a fallback-free reopen.
            match crate::checkpoint::FileBackend::open(path) {
                Ok(backend) => {
                    let pages = backend.data_pages();
                    drop(backend);
                    if pages.is_empty() {
                        false
                    } else {
                        let phys = pages[nth % pages.len()];
                        let split = (words_new * PERSIST_ATOM_BYTES).min(PAGE_BYTES);
                        patch_page(phys, &mut |buf| {
                            for b in &mut buf[split..] {
                                *b = 0xEE;
                            }
                        })?
                    }
                }
                // An unopenable image has nothing left to tear.
                Err(_) => false,
            }
        }
        DurableFault::TruncateTail { pages } => {
            // Keep at least the header page so the damage is "lost tail",
            // not "lost image".
            let new_len = len
                .saturating_sub(pages * PAGE_BYTES as u64)
                .max(PAGE_BYTES as u64);
            if new_len < len {
                file.set_len(new_len)
                    .map_err(|e| IoError::from_io("truncate", &e))?;
                file.sync_data()
                    .map_err(|e| IoError::from_io("fsync", &e))?;
                true
            } else {
                false
            }
        }
    };
    Ok(DurableFaultRecord { fault, applied })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_line_splits_at_word_granularity() {
        let new = [0xAA; LINE_BYTES];
        let old = [0x55; LINE_BYTES];
        let torn = torn_line(&new, &old, 3);
        assert_eq!(&torn[..24], &[0xAA; 24]);
        assert_eq!(&torn[24..], &[0x55; 40]);
        assert_eq!(torn_line(&new, &old, 0), old);
        assert_eq!(torn_line(&new, &old, 8), new);
        assert_eq!(torn_line(&new, &old, 99), new, "clamped past the line");
    }

    #[test]
    fn torn_write_needs_history() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(1);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::TornWrite {
                addr: a,
                words_new: 4,
            },
        );
        assert!(!rec.applied, "no history journal, tear is a no-op");
        assert_eq!(store.read_line(a), [2; LINE_BYTES]);
    }

    #[test]
    fn torn_write_mixes_old_and_new() {
        let mut store = NvmStore::new();
        store.track_history(true);
        let a = LineAddr::new(1);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::TornWrite {
                addr: a,
                words_new: 2,
            },
        );
        assert!(rec.applied);
        let line = store.read_line(a);
        assert_eq!(&line[..16], &[2; 16]);
        assert_eq!(&line[16..], &[1; 48]);
    }

    #[test]
    fn full_tear_is_a_noop() {
        let mut store = NvmStore::new();
        store.track_history(true);
        let a = LineAddr::new(1);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::TornWrite {
                addr: a,
                words_new: 8,
            },
        );
        assert!(!rec.applied, "all words made it: nothing torn");
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(2);
        store.write_line(a, [0; LINE_BYTES]);
        let rec = apply(
            &mut store,
            NvmFault::BitFlip {
                addr: a,
                byte: 5,
                bit: 3,
            },
        );
        assert!(rec.applied);
        let line = store.read_line(a);
        assert_eq!(line[5], 1 << 3);
        assert!(line.iter().enumerate().all(|(i, &b)| i == 5 || b == 0));
    }

    #[test]
    fn stuck_at_matching_value_is_noop() {
        let mut store = NvmStore::new();
        let a = LineAddr::new(3);
        store.write_line(a, [7; LINE_BYTES]);
        let noop = apply(
            &mut store,
            NvmFault::StuckAt {
                addr: a,
                byte: 0,
                value: 7,
            },
        );
        assert!(!noop.applied);
        let hit = apply(
            &mut store,
            NvmFault::StuckAt {
                addr: a,
                byte: 0,
                value: 0xFF,
            },
        );
        assert!(hit.applied);
        assert_eq!(store.read_line(a)[0], 0xFF);
    }

    #[test]
    fn dropped_write_reverts_to_previous() {
        let mut store = NvmStore::new();
        store.track_history(true);
        let a = LineAddr::new(4);
        store.write_line(a, [1; LINE_BYTES]);
        store.write_line(a, [2; LINE_BYTES]);
        let rec = apply(&mut store, NvmFault::DroppedWrite { addr: a });
        assert!(rec.applied);
        assert_eq!(store.read_line(a), [1; LINE_BYTES]);
    }

    #[test]
    fn fault_accessors() {
        let f = NvmFault::BitFlip {
            addr: LineAddr::new(9),
            byte: 0,
            bit: 0,
        };
        assert_eq!(f.addr(), LineAddr::new(9));
        assert_eq!(f.kind_name(), "bit_flip");
    }

    mod durable {
        use super::super::*;
        use crate::backend::Backend;
        use crate::checkpoint::FileBackend;
        use std::path::PathBuf;

        fn image(name: &str) -> PathBuf {
            let dir = std::env::temp_dir().join(format!("scue-dfault-{}", std::process::id()));
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(name);
            let mut b = FileBackend::create(&path).unwrap();
            b.write_line(LineAddr::new(1), [1; LINE_BYTES]);
            b.checkpoint(b"one").unwrap();
            b.write_line(LineAddr::new(1), [2; LINE_BYTES]);
            b.write_line(LineAddr::new(99), [9; LINE_BYTES]);
            b.checkpoint(b"two").unwrap();
            path
        }

        #[test]
        fn torn_root_slot_forces_fallback() {
            let path = image("torn-slot.img");
            let gen_before = FileBackend::open(&path).unwrap().generation();
            let rec = apply_durable(&path, DurableFault::TornRootSlot { words_new: 3 }).unwrap();
            assert!(rec.applied);
            let b = FileBackend::open(&path).unwrap();
            assert!(b.fell_back());
            assert_eq!(b.generation(), gen_before.wrapping_sub(1));
            assert_eq!(b.meta(), b"one");
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn stale_slot_bit_flip_forces_fallback() {
            let path = image("bitflip-slot.img");
            let rec =
                apply_durable(&path, DurableFault::StaleSlotBitFlip { byte: 40, bit: 2 }).unwrap();
            assert!(rec.applied);
            let b = FileBackend::open(&path).unwrap();
            assert!(b.fell_back(), "CRC mismatch skips the newest slot");
            assert_eq!(b.meta(), b"one");
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn torn_page_changes_committed_content() {
            let path = image("torn-page.img");
            let rec = apply_durable(
                &path,
                DurableFault::TornPage {
                    nth: 0,
                    words_new: 1,
                },
            )
            .unwrap();
            assert!(rec.applied);
            let b = FileBackend::open(&path).unwrap();
            assert!(!b.fell_back(), "slots are intact; only data is rotten");
            // Logical page 0 line 1 sits past the surviving first word.
            assert_eq!(b.read_line(LineAddr::new(1)), [0xEE; LINE_BYTES]);
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn truncate_tail_triggers_typed_degradation() {
            let path = image("trunc.img");
            let rec = apply_durable(&path, DurableFault::TruncateTail { pages: 1 }).unwrap();
            assert!(rec.applied);
            // One page gone: the newest slot's extent check fails and open
            // falls back (or, with more damage, errors typed) — never panics.
            match FileBackend::open(&path) {
                Ok(b) => assert!(b.fell_back() || b.generation() > 0),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn durable_kind_names_are_stable() {
            assert_eq!(
                DurableFault::TornRootSlot { words_new: 0 }.kind_name(),
                "torn_root_slot"
            );
            assert_eq!(
                DurableFault::StaleSlotBitFlip { byte: 0, bit: 0 }.kind_name(),
                "stale_slot_bit_flip"
            );
            assert_eq!(
                DurableFault::TornPage {
                    nth: 0,
                    words_new: 0
                }
                .kind_name(),
                "torn_page"
            );
            assert_eq!(
                DurableFault::TruncateTail { pages: 1 }.kind_name(),
                "truncate_tail"
            );
        }
    }
}
