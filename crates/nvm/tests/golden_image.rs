//! On-disk image layout golden test: builds a deterministic durable
//! image (create → write → checkpoint → churn → checkpoint) and pins
//! its byte layout against a committed golden dump. Any change to the
//! header encoding, root-slot fields, CoW allocation order, page-table
//! serialization, or zero-page elision shows up as a page-CRC diff.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! SCUE_UPDATE_GOLDEN=1 cargo test -p scue-nvm --test golden_image
//! ```

use scue_nvm::layout::{self, RootSlot, PAGE_BYTES};
use scue_nvm::store::Line;
use scue_nvm::{LineAddr, NvmStore, LINE_BYTES};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares `rendered` against the committed golden (or rewrites the
/// golden when `SCUE_UPDATE_GOLDEN` is set).
fn assert_matches_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var("SCUE_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "{name}: image layout diverged from the committed golden \
         (SCUE_UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scue-golden-image-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

/// A deterministic, address-keyed fill pattern (never the zero line).
fn pattern(addr: u64) -> Line {
    let mut line = [0u8; LINE_BYTES];
    for (i, b) in line.iter_mut().enumerate() {
        *b = ((addr as usize).wrapping_mul(31) + i * 7) as u8 % 253 + 1;
    }
    line
}

/// Builds the reference image: create (generation 1, empty meta), a
/// spread of line writes plus checkpoint A (generation 2), then a CoW
/// churn round — rewrite, fresh page, zero-erase — plus checkpoint B
/// (generation 3). Every step is deterministic, so the image bytes are
/// a pure function of the layout code.
fn build_reference_image(path: &PathBuf) -> NvmStore {
    let _ = std::fs::remove_file(path);
    let mut store = NvmStore::create_file(path).expect("create image");
    for addr in [0u64, 1, 63, 64, 130, 4000] {
        store.write_line(LineAddr::new(addr), pattern(addr));
    }
    store
        .checkpoint(b"scue-golden-meta-A")
        .expect("checkpoint A");
    // Churn: rewrite an existing line (CoW of a live page), touch a new
    // page, and erase a line back to zero (page stays, line zeroed).
    store.write_line(LineAddr::new(64), pattern(999));
    store.write_line(LineAddr::new(200), pattern(200));
    store.write_line(LineAddr::new(63), [0u8; LINE_BYTES]);
    store
        .checkpoint(b"scue-golden-meta-B: a longer blob so the meta run sizing is exercised")
        .expect("checkpoint B");
    store
}

/// Renders the image as a diffable text dump: geometry constants, a
/// per-page classification with CRC-32 over the raw page bytes (so any
/// byte change is visible), decoded root-slot fields, and a trimmed hex
/// dump of the header and both slot pages to pin their exact encoding.
fn render_layout(bytes: &[u8]) -> String {
    assert_eq!(bytes.len() % PAGE_BYTES, 0, "image is page-granular");
    let pages = bytes.len() / PAGE_BYTES;
    let mut out = String::new();
    out.push_str(&format!(
        "geometry layout_version={} page_bytes={} lines_per_page={} first_payload_page={}\n",
        layout::LAYOUT_VERSION,
        PAGE_BYTES,
        layout::LINES_PER_PAGE,
        layout::FIRST_PAYLOAD_PAGE,
    ));
    out.push_str(&format!("file_pages={pages}\n"));
    for p in 0..pages {
        let page = &bytes[p * PAGE_BYTES..(p + 1) * PAGE_BYTES];
        let crc = layout::crc32(page);
        match p as u64 {
            0 => {
                layout::decode_header(page).expect("valid header page");
                out.push_str(&format!("page {p} kind=header crc32={crc:08x}\n"));
            }
            // Every *valid* slot page shares one whole-page CRC: the
            // page is `body ‖ crc32(body)` plus zero padding, and a
            // message followed by its own CRC has a constant residue.
            // The decoded fields and the hex dump below pin the bytes.
            1 | 2 => match RootSlot::decode(page) {
                Some(s) => out.push_str(&format!(
                    "page {p} kind=slot generation={} table_page={} table_len={} \
                     table_crc={:08x} meta_page={} meta_len={} meta_crc={:08x} \
                     file_pages={} nonzero_lines={} crc32={crc:08x}\n",
                    s.generation,
                    s.table_page,
                    s.table_len,
                    s.table_crc,
                    s.meta_page,
                    s.meta_len,
                    s.meta_crc,
                    s.file_pages,
                    s.nonzero_lines,
                )),
                None => out.push_str(&format!("page {p} kind=slot-unparseable crc32={crc:08x}\n")),
            },
            _ => {
                let nonzero = page.iter().filter(|&&b| b != 0).count();
                let kind = if nonzero == 0 { "free" } else { "data" };
                out.push_str(&format!(
                    "page {p} kind={kind} crc32={crc:08x} nonzero_bytes={nonzero}\n"
                ));
            }
        }
    }
    // Exact bytes of the header and both root slots, trimmed after the
    // last non-zero byte (the remainder of each page is zero padding).
    for p in 0..3usize {
        let page = &bytes[p * PAGE_BYTES..(p + 1) * PAGE_BYTES];
        let end = page
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1)
            .div_ceil(16)
            * 16;
        out.push_str(&format!("hex page {p} (first {end} bytes)\n"));
        for (row, chunk) in page[..end].chunks(16).enumerate() {
            let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
            out.push_str(&format!("  {:04x}  {}\n", row * 16, hex.join(" ")));
        }
    }
    out
}

#[test]
fn image_layout_matches_golden() {
    let path = tmp("layout.img");
    let store = build_reference_image(&path);
    assert_eq!(store.generation(), 3);
    drop(store);
    let bytes = std::fs::read(&path).expect("read image");
    assert_matches_golden("nvm_image_layout.txt", &render_layout(&bytes));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn image_bytes_are_deterministic() {
    let a = tmp("det-a.img");
    let b = tmp("det-b.img");
    drop(build_reference_image(&a));
    drop(build_reference_image(&b));
    assert_eq!(
        std::fs::read(&a).expect("read a"),
        std::fs::read(&b).expect("read b"),
        "two identically-driven builds must produce byte-identical images"
    );
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn reference_image_reopens_with_the_committed_state() {
    let path = tmp("reopen.img");
    drop(build_reference_image(&path));
    let store = NvmStore::open_file(&path).expect("reopen");
    assert_eq!(store.generation(), 3);
    assert!(!store.fell_back());
    assert_eq!(
        store.meta(),
        b"scue-golden-meta-B: a longer blob so the meta run sizing is exercised"
    );
    // Checkpoint B state: the rewrite and the fresh line landed, the
    // zero-erased line reads back as zero and is absent from the map.
    assert_eq!(store.read_line(LineAddr::new(64)), pattern(999));
    assert_eq!(store.read_line(LineAddr::new(200)), pattern(200));
    assert_eq!(store.read_line(LineAddr::new(63)), [0u8; LINE_BYTES]);
    assert!(!store.iter().any(|(a, _)| a == LineAddr::new(63)));
    let _ = std::fs::remove_file(&path);
}
