//! Property tests for the NVM substrate: store semantics, WPQ ordering,
//! and timing-model sanity under random access streams.

use scue_nvm::store::{NvmStore, ZERO_LINE};
use scue_nvm::timing::{PcmDevice, PcmTiming};
use scue_nvm::wpq::WritePendingQueue;
use scue_nvm::{AccessKind, LineAddr, MemoryController};
use scue_util::prop::{self, prelude::*};
use std::collections::HashMap;

proptest! {
    /// The sparse store behaves exactly like a total map defaulting to zero.
    #[test]
    fn store_matches_reference_map(ops in prop::collection::vec((0u64..64, any::<u8>()), 0..200)) {
        let mut store = NvmStore::new();
        let mut reference: HashMap<u64, [u8; 64]> = HashMap::new();
        for (addr, fill) in ops {
            let line = [fill; 64];
            store.write_line(LineAddr::new(addr), line);
            reference.insert(addr, line);
        }
        for addr in 0..64u64 {
            let expected = reference.get(&addr).copied().unwrap_or(ZERO_LINE);
            prop_assert_eq!(store.read_line(LineAddr::new(addr)), expected);
        }
    }

    /// Snapshot/restore always returns to the exact captured image.
    #[test]
    fn snapshot_restore_is_exact(
        before in prop::collection::vec((0u64..32, 1u8..=255), 0..50),
        after in prop::collection::vec((0u64..32, any::<u8>()), 0..50),
    ) {
        let mut store = NvmStore::new();
        for (addr, fill) in &before {
            store.write_line(LineAddr::new(*addr), [*fill; 64]);
        }
        let image: Vec<_> = (0..32u64).map(|a| store.read_line(LineAddr::new(a))).collect();
        let snap = store.snapshot();
        for (addr, fill) in &after {
            store.write_line(LineAddr::new(*addr), [*fill; 64]);
        }
        store.restore(&snap);
        for (a, expected) in image.into_iter().enumerate() {
            prop_assert_eq!(store.read_line(LineAddr::new(a as u64)), expected);
        }
    }

    /// WPQ never exceeds its capacity and acceptance times are monotonic
    /// for a monotonic arrival stream.
    #[test]
    fn wpq_capacity_and_monotonicity(
        capacity in 1usize..16,
        arrivals in prop::collection::vec((0u64..512, 0u64..50), 1..100),
    ) {
        let mut dev = PcmDevice::new(PcmTiming::paper_2ghz(), 4, 64);
        let mut wpq = WritePendingQueue::new(capacity);
        let mut now = 0u64;
        for (addr, gap) in arrivals {
            now += gap;
            let e = wpq.enqueue(LineAddr::new(addr), now, &mut dev);
            prop_assert!(e.accepted >= now, "cannot accept before arrival");
            // A coalesced write merges into an entry whose media write is
            // already scheduled, so `drained` may precede `accepted` only
            // never — both still respect causality from arrival.
            prop_assert!(e.drained >= now, "drain after arrival");
            let peak = wpq.stats().max_occupancy;
            prop_assert!(peak <= capacity, "occupancy bounded by capacity");
        }
    }

    /// Timing device: completions never precede issue, and bank state
    /// never travels back in time for in-order issue per bank.
    #[test]
    fn device_time_is_causal(ops in prop::collection::vec((0u64..1024, any::<bool>(), 0u64..100), 1..200)) {
        let mut dev = PcmDevice::paper();
        let mut now = 0u64;
        for (addr, is_read, gap) in ops {
            now += gap;
            let sched = if is_read {
                dev.schedule_read(LineAddr::new(addr), now)
            } else {
                dev.schedule_write(LineAddr::new(addr), now)
            };
            prop_assert!(sched.start >= now);
            prop_assert!(sched.done > sched.start);
        }
    }

    /// Controller: every written line reads back; read-after-write always
    /// returns the latest data regardless of queue state.
    #[test]
    fn controller_read_after_write(ops in prop::collection::vec((0u64..64, any::<u8>()), 1..100)) {
        let mut mc = MemoryController::paper();
        let mut now = 0u64;
        let mut latest: HashMap<u64, [u8; 64]> = HashMap::new();
        for (addr, fill) in ops {
            let line = [fill; 64];
            let enq = mc.write(LineAddr::new(addr), line, now, AccessKind::UserData);
            latest.insert(addr, line);
            now = enq.accepted + 1;
            let (data, done) = mc.read(LineAddr::new(addr), now, AccessKind::UserData);
            prop_assert_eq!(&data, latest.get(&addr).unwrap());
            now = done;
        }
    }
}

/// Regression preserved from `prop_nvm.proptest-regressions`: the shrunk
/// counterexample proptest once found for `wpq_capacity_and_monotonicity`
/// (capacity 2, five same-cycle arrivals hitting the coalescing path),
/// kept as a pinned explicit input so the fix never regresses.
#[test]
fn wpq_regression_same_cycle_burst() {
    let capacity = 2usize;
    let arrivals = [(320u64, 0u64), (64, 0), (128, 0), (0, 0), (0, 0)];
    let mut dev = PcmDevice::new(PcmTiming::paper_2ghz(), 4, 64);
    let mut wpq = WritePendingQueue::new(capacity);
    let mut now = 0u64;
    for (addr, gap) in arrivals {
        now += gap;
        let e = wpq.enqueue(LineAddr::new(addr), now, &mut dev);
        assert!(e.accepted >= now, "cannot accept before arrival");
        assert!(e.drained >= now, "drain after arrival");
        let peak = wpq.stats().max_occupancy;
        assert!(peak <= capacity, "occupancy bounded by capacity");
    }
}
