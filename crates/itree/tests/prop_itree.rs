//! Property tests for the integrity-tree substrate.
//!
//! The central invariant of the whole paper lives here: under fully
//! propagated (eager) updates, **a parent counter equals the sum of its
//! child counters**, and the root counter equals the sum of all leaf
//! write counts in its subtree (Fig. 7). `rebuild_all` is the reference
//! eager construction, so these properties are checked against it for
//! arbitrary leaf populations.

use scue_crypto::cme::CounterBlock;
use scue_crypto::SecretKey;
use scue_itree::geometry::{NodeId, Parent, TreeGeometry};
use scue_itree::{MacSideband, SitContext};
use scue_nvm::NvmStore;
use scue_util::prop::{self, prelude::*};

/// Applies `(leaf, minor, times)` increments through the CounterBlock API
/// and writes the blocks into the store.
fn populate(
    ctx: &SitContext,
    store: &mut NvmStore,
    ops: &[(u64, usize, usize)],
) -> Vec<CounterBlock> {
    let leaf_count = ctx.geometry().leaf_count();
    let mut blocks = vec![CounterBlock::new(); leaf_count as usize];
    for &(leaf, minor, times) in ops {
        let leaf = leaf % leaf_count;
        for _ in 0..times {
            blocks[leaf as usize].increment(minor % 64).unwrap();
        }
    }
    for (i, block) in blocks.iter().enumerate() {
        store.write_line(
            ctx.geometry().node_addr(NodeId::new(0, i as u64)),
            block.to_line(),
        );
    }
    blocks
}

proptest! {
    /// Parent counter == sum of child counters, at every level, for any
    /// leaf population.
    #[test]
    fn counter_sum_invariant(
        leaves in 1u64..65,
        ops in prop::collection::vec((any::<u64>(), 0usize..64, 1usize..6), 0..40),
    ) {
        let ctx = SitContext::new(TreeGeometry::tiny(leaves), SecretKey::from_seed(1));
        let mut store = NvmStore::new();
        let mut sideband = MacSideband::new();
        let blocks = populate(&ctx, &mut store, &ops);
        let root = ctx.rebuild_all(&mut store, &mut sideband);
        let geom = ctx.geometry();

        // Leaf level: parent counter slot equals leaf dummy.
        for (i, block) in blocks.iter().enumerate() {
            let leaf = NodeId::new(0, i as u64);
            let parent_counter = match geom.parent(leaf) {
                Parent::Node(p) => ctx.read_node(&store, p).counter(leaf.parent_slot()),
                Parent::Root(slot) => root.counter(slot),
            };
            prop_assert_eq!(parent_counter, ctx.leaf_dummy(block));
        }

        // Intermediate levels: parent counter equals node dummy.
        for level in 1..geom.stored_levels() {
            for idx in 0..geom.level_count(level) {
                let node_id = NodeId::new(level, idx);
                let node = ctx.read_node(&store, node_id);
                let parent_counter = match geom.parent(node_id) {
                    Parent::Node(p) => ctx.read_node(&store, p).counter(node_id.parent_slot()),
                    Parent::Root(slot) => root.counter(slot),
                };
                prop_assert_eq!(parent_counter, ctx.node_dummy(&node));
            }
        }

        // Root: total equals total leaf write count.
        let total: u64 = blocks.iter().map(|b| b.write_count()).sum();
        prop_assert_eq!(root.counters().iter().sum::<u64>(), total);
    }

    /// Every populated leaf verifies against its reconstructed parent
    /// counter, and any single-counter tamper breaks verification.
    #[test]
    fn leaf_verification_sound_and_complete(
        ops in prop::collection::vec((0u64..16, 0usize..64, 1usize..4), 1..20),
        tamper_leaf in 0u64..16,
    ) {
        let ctx = SitContext::new(TreeGeometry::tiny(16), SecretKey::from_seed(2));
        let mut store = NvmStore::new();
        let mut sideband = MacSideband::new();
        populate(&ctx, &mut store, &ops);
        ctx.rebuild_all(&mut store, &mut sideband);

        for i in 0..16u64 {
            let leaf = NodeId::new(0, i);
            let block = ctx.read_leaf(&store, leaf);
            let mac = ctx.read_leaf_mac(&sideband, leaf);
            prop_assert!(ctx.verify_leaf(leaf, &block, mac, ctx.leaf_dummy(&block)));
        }

        // Tamper: bump one minor without re-MACing.
        let leaf = NodeId::new(0, tamper_leaf);
        let mut block = ctx.read_leaf(&store, leaf);
        block.increment(0).unwrap();
        store.tamper_line(ctx.geometry().node_addr(leaf), block.to_line());
        let mac = ctx.read_leaf_mac(&sideband, leaf);
        prop_assert!(!ctx.verify_leaf(leaf, &block, mac, ctx.leaf_dummy(&block)));
    }

    /// rebuild_all is a pure function of the leaves: wiping intermediates
    /// and rebuilding reproduces the identical root (bottom-up
    /// reconstructability — what counter-summing buys SIT).
    #[test]
    fn reconstruction_from_leaves_alone(
        ops in prop::collection::vec((0u64..64, 0usize..64, 1usize..4), 0..30),
    ) {
        let ctx = SitContext::new(TreeGeometry::tiny(64), SecretKey::from_seed(3));
        let mut store = NvmStore::new();
        let mut sideband = MacSideband::new();
        populate(&ctx, &mut store, &ops);
        let original = ctx.rebuild_all(&mut store, &mut sideband);
        let geom = ctx.geometry();
        for level in 1..geom.stored_levels() {
            for idx in 0..geom.level_count(level) {
                store.tamper_line(geom.node_addr(NodeId::new(level, idx)), [0u8; 64]);
            }
        }
        let rebuilt = ctx.rebuild_all(&mut store, &mut sideband);
        prop_assert_eq!(original, rebuilt);
    }

    /// Geometry bijection holds for arbitrary sizes: every node address
    /// decodes back to the node, and regions never overlap.
    #[test]
    fn geometry_bijection(data_lines in 1u64..100_000) {
        let geom = TreeGeometry::for_data_lines(data_lines);
        let mut seen = std::collections::HashSet::new();
        for level in 0..geom.stored_levels() {
            let count = geom.level_count(level);
            for idx in [0, count / 2, count - 1] {
                let node = NodeId::new(level, idx);
                let addr = geom.node_addr(node);
                prop_assert!(addr.raw() >= data_lines, "metadata after data");
                prop_assert!(addr.raw() < geom.total_lines());
                prop_assert_eq!(geom.node_at_addr(addr), Some(node));
                seen.insert(addr);
            }
        }
        // Sampled addresses are distinct across levels.
        let sampled: usize = (0..geom.stored_levels())
            .map(|l| {
                let c = geom.level_count(l);
                [0, c / 2, c - 1].iter().collect::<std::collections::HashSet<_>>().len()
            })
            .sum();
        prop_assert_eq!(seen.len(), sampled);
    }

    /// Root-slot partition: every leaf's ancestor chain ends at the slot
    /// `root_slot_of_leaf` predicts.
    #[test]
    fn root_slot_consistency(data_lines in 64u64..1_000_000, probe in any::<u64>()) {
        let geom = TreeGeometry::for_data_lines(data_lines);
        let leaf = probe % geom.leaf_count();
        let (_, slot) = geom.ancestors(NodeId::new(0, leaf));
        prop_assert_eq!(slot, geom.root_slot_of_leaf(leaf));
    }
}
