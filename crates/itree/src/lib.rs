//! Integrity-tree substrate: geometry, node formats and tree logic.
//!
//! The three tree families from the paper's background (§II-D):
//!
//! * [`mt`] — the plain Merkle Tree over user data (Fig. 2), kept as the
//!   pedagogical baseline;
//! * [`bmt`] — the Bonsai Merkle Tree over counter blocks (Fig. 3), whose
//!   child→parent hashing direction is what makes bottom-up reconstruction
//!   natural;
//! * [`sit`] — the SGX-style Integrity Tree (Fig. 4): every node is eight
//!   56-bit counters plus one 64-bit HMAC keyed by the *parent's* counter,
//!   the dependency SCUE decouples.
//!
//! Shared machinery:
//!
//! * [`geometry`] — the 8-ary level structure over the 16 GB address
//!   space (9 levels, Table II) and the node↔address bijection;
//! * [`node`] — packed 64 B SIT/BMT node codecs and the dummy-counter sum;
//! * [`root`] — the on-chip non-volatile root registers (Running_root /
//!   Recovery_root);
//! * [`morph`] — analytic VAULT/MorphCtr wider-node organisations (the
//!   §VII discussion that SCUE is arity-independent);
//! * [`sideband`] — the ECC-co-located MAC store for user-data lines and
//!   leaf counter blocks (Synergy-style, so MACs travel with their line at
//!   no extra memory traffic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmt;
pub mod geometry;
pub mod morph;
pub mod mt;
pub mod node;
pub mod root;
pub mod sideband;
pub mod sit;

pub use geometry::{NodeId, Parent, TreeGeometry};
pub use node::{BmtNode, SitNode, COUNTER_MASK};
pub use root::RootRegister;
pub use sideband::MacSideband;
pub use sit::SitContext;
