//! Tree geometry: the 8-ary level structure over the NVM address space.
//!
//! Table II: for 16 GB of protected data the SIT has 9 levels of 8-ary,
//! 64 B nodes. Leaves (level 0) are the CME counter blocks — one per 64
//! user-data lines — and the root (top level) lives in an on-chip register
//! rather than in NVM. Geometry answers every "where is it / who covers
//! it" question: data line → covering leaf, node → parent and child slot,
//! node → NVM line address, and the reverse mappings.

use scue_nvm::LineAddr;

/// Tree fan-out: 8 counters per node, 8 children per node (Fig. 4).
pub const ARITY: u64 = 8;

/// Data lines covered by one leaf counter block (64 minors, §II-B).
pub const LINES_PER_LEAF: u64 = 64;

/// A node's position: `(level, index)`. Level 0 is the leaf (counter
/// block) level; the root is *not* a `NodeId` (it is on-chip, see
/// [`Parent::Root`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Tree level, 0 = leaves.
    pub level: u8,
    /// Index within the level.
    pub index: u64,
}

impl NodeId {
    /// Makes a node id.
    pub const fn new(level: u8, index: u64) -> Self {
        Self { level, index }
    }

    /// The slot (0..8) this node occupies in its parent.
    pub const fn parent_slot(self) -> usize {
        (self.index % ARITY) as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}#{}", self.level, self.index)
    }
}

/// The parent of a node: either another stored node, or the on-chip root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parent {
    /// An NVM-resident tree node.
    Node(NodeId),
    /// The on-chip root register; the payload is the root counter slot
    /// (0..8) covering the child.
    Root(usize),
}

/// Geometry of one integrity tree instance.
///
/// # Example
///
/// ```
/// use scue_itree::TreeGeometry;
///
/// // The paper's 16 GB configuration: 2^28 data lines.
/// let geom = TreeGeometry::for_data_lines(1 << 28);
/// assert_eq!(geom.total_levels(), 9);
/// assert_eq!(geom.leaf_count(), 1 << 22);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGeometry {
    data_lines: u64,
    /// Node count per stored level, `[0] = leaves`. The on-chip root is
    /// not included.
    level_counts: Vec<u64>,
    /// NVM base line address per stored level.
    level_bases: Vec<u64>,
}

impl TreeGeometry {
    /// Geometry for a data region of `data_lines` 64 B lines, with one
    /// leaf counter block per 64 lines, metadata laid out directly after
    /// the data region.
    ///
    /// # Panics
    ///
    /// Panics if `data_lines` is zero.
    pub fn for_data_lines(data_lines: u64) -> Self {
        assert!(data_lines > 0, "cannot protect an empty data region");
        let leaf_count = data_lines.div_ceil(LINES_PER_LEAF);
        let mut level_counts = vec![leaf_count];
        while *level_counts.last().expect("non-empty") > ARITY {
            let next = level_counts.last().expect("non-empty").div_ceil(ARITY);
            level_counts.push(next);
        }
        let mut level_bases = Vec::with_capacity(level_counts.len());
        let mut base = data_lines;
        for &count in &level_counts {
            level_bases.push(base);
            base += count;
        }
        Self {
            data_lines,
            level_counts,
            level_bases,
        }
    }

    /// The paper's 16 GB configuration (2^28 data lines, 9 levels).
    pub fn paper_16gb() -> Self {
        Self::for_data_lines(1 << 28)
    }

    /// A tiny geometry for tests: `leaves` leaf nodes (protecting
    /// `leaves * 64` data lines).
    pub fn tiny(leaves: u64) -> Self {
        Self::for_data_lines(leaves * LINES_PER_LEAF)
    }

    /// Number of 64 B lines of protected user data.
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Number of leaf counter blocks.
    pub fn leaf_count(&self) -> u64 {
        self.level_counts[0]
    }

    /// Stored (NVM-resident) levels — everything below the on-chip root.
    pub fn stored_levels(&self) -> u8 {
        self.level_counts.len() as u8
    }

    /// Total tree levels including the on-chip root.
    pub fn total_levels(&self) -> u8 {
        self.stored_levels() + 1
    }

    /// Node count at stored level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not a stored level.
    pub fn level_count(&self, level: u8) -> u64 {
        self.level_counts[level as usize]
    }

    /// First NVM line beyond data + metadata (device capacity needed).
    pub fn total_lines(&self) -> u64 {
        *self.level_bases.last().expect("non-empty") + *self.level_counts.last().expect("non-empty")
    }

    /// Whether `addr` is in the user-data region.
    pub fn is_data_line(&self, addr: LineAddr) -> bool {
        addr.raw() < self.data_lines
    }

    /// The leaf counter block covering a user-data line.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data line.
    pub fn leaf_of_data(&self, addr: LineAddr) -> NodeId {
        assert!(self.is_data_line(addr), "{addr} is not a data line");
        NodeId::new(0, addr.raw() / LINES_PER_LEAF)
    }

    /// The minor-counter slot (0..64) of a data line within its leaf.
    pub fn minor_slot_of_data(&self, addr: LineAddr) -> usize {
        (addr.raw() % LINES_PER_LEAF) as usize
    }

    /// The NVM line address of a stored node.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the geometry.
    pub fn node_addr(&self, node: NodeId) -> LineAddr {
        let level = node.level as usize;
        assert!(level < self.level_counts.len(), "level {level} not stored");
        assert!(
            node.index < self.level_counts[level],
            "node {node} beyond level width {}",
            self.level_counts[level]
        );
        LineAddr::new(self.level_bases[level] + node.index)
    }

    /// The node stored at an NVM line, if the line is in a tree region.
    pub fn node_at_addr(&self, addr: LineAddr) -> Option<NodeId> {
        let raw = addr.raw();
        for (level, (&base, &count)) in self
            .level_bases
            .iter()
            .zip(self.level_counts.iter())
            .enumerate()
        {
            if raw >= base && raw < base + count {
                return Some(NodeId::new(level as u8, raw - base));
            }
        }
        None
    }

    /// The parent of a stored node — another node, or the on-chip root.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the geometry.
    pub fn parent(&self, node: NodeId) -> Parent {
        let level = node.level as usize;
        assert!(level < self.level_counts.len(), "level {level} not stored");
        assert!(
            node.index < self.level_counts[level],
            "node {node} out of range"
        );
        if level + 1 == self.level_counts.len() {
            Parent::Root((node.index % ARITY) as usize)
        } else {
            Parent::Node(NodeId::new(node.level + 1, node.index / ARITY))
        }
    }

    /// The chain of ancestors of `node`, nearest first, ending at the
    /// root slot.
    pub fn ancestors(&self, node: NodeId) -> (Vec<NodeId>, usize) {
        let mut chain = Vec::new();
        let mut cur = node;
        loop {
            match self.parent(cur) {
                Parent::Node(p) => {
                    chain.push(p);
                    cur = p;
                }
                Parent::Root(slot) => return (chain, slot),
            }
        }
    }

    /// The children of a stored node at `level > 0`: up to 8 nodes at
    /// `level - 1` (the last node of a level may have fewer).
    ///
    /// # Panics
    ///
    /// Panics if `node.level == 0` (leaf children are data lines) or the
    /// node is outside the geometry.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        assert!(node.level > 0, "leaves have no node children");
        let child_level = (node.level - 1) as usize;
        assert!(child_level < self.level_counts.len());
        let child_count = self.level_counts[child_level];
        let first = node.index * ARITY;
        (first..(first + ARITY).min(child_count))
            .map(|i| NodeId::new(node.level - 1, i))
            .collect()
    }

    /// The top-level stored nodes — the direct children of the root.
    pub fn root_children(&self) -> Vec<NodeId> {
        let top = (self.level_counts.len() - 1) as u8;
        (0..self.level_counts[top as usize])
            .map(|i| NodeId::new(top, i))
            .collect()
    }

    /// The root counter slot covering a leaf: which of the root's 8
    /// counters sums over this leaf's subtree.
    pub fn root_slot_of_leaf(&self, leaf_index: u64) -> usize {
        // Each root child covers arity^(stored_levels - 1) leaves.
        let leaves_per_top = ARITY.pow(self.stored_levels() as u32 - 1);
        ((leaf_index / leaves_per_top) % ARITY) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_has_nine_levels() {
        let g = TreeGeometry::paper_16gb();
        assert_eq!(g.total_levels(), 9);
        assert_eq!(g.stored_levels(), 8);
        assert_eq!(g.leaf_count(), 1 << 22);
        assert_eq!(g.level_count(7), 2, "top stored level has two nodes");
    }

    #[test]
    fn tiny_geometry_levels() {
        let g = TreeGeometry::tiny(64);
        // 64 leaves -> L1 has 8 -> root on top: stored levels = 2.
        assert_eq!(g.stored_levels(), 2);
        assert_eq!(g.total_levels(), 3);
        assert_eq!(g.level_count(1), 8);
    }

    #[test]
    fn single_leaf_geometry() {
        let g = TreeGeometry::tiny(1);
        assert_eq!(g.stored_levels(), 1);
        assert_eq!(g.leaf_count(), 1);
        assert_eq!(g.parent(NodeId::new(0, 0)), Parent::Root(0));
    }

    #[test]
    fn leaf_of_data_and_minor_slot() {
        let g = TreeGeometry::tiny(4);
        assert_eq!(g.leaf_of_data(LineAddr::new(0)), NodeId::new(0, 0));
        assert_eq!(g.leaf_of_data(LineAddr::new(63)), NodeId::new(0, 0));
        assert_eq!(g.leaf_of_data(LineAddr::new(64)), NodeId::new(0, 1));
        assert_eq!(g.minor_slot_of_data(LineAddr::new(65)), 1);
    }

    #[test]
    fn node_addr_bijection() {
        let g = TreeGeometry::tiny(64);
        for level in 0..g.stored_levels() {
            for index in 0..g.level_count(level) {
                let node = NodeId::new(level, index);
                let addr = g.node_addr(node);
                assert_eq!(g.node_at_addr(addr), Some(node));
                assert!(!g.is_data_line(addr), "metadata beyond data region");
            }
        }
    }

    #[test]
    fn data_lines_are_not_nodes() {
        let g = TreeGeometry::tiny(4);
        assert_eq!(g.node_at_addr(LineAddr::new(0)), None);
        assert_eq!(g.node_at_addr(LineAddr::new(255)), None);
    }

    #[test]
    fn parent_child_consistency() {
        let g = TreeGeometry::tiny(64);
        for index in 0..64 {
            let leaf = NodeId::new(0, index);
            match g.parent(leaf) {
                Parent::Node(p) => {
                    assert!(g.children(p).contains(&leaf));
                    assert_eq!(leaf.parent_slot(), (index % 8) as usize);
                }
                Parent::Root(_) => panic!("leaves of a 3-level tree have node parents"),
            }
        }
    }

    #[test]
    fn ancestors_end_at_root() {
        let g = TreeGeometry::paper_16gb();
        let (chain, slot) = g.ancestors(NodeId::new(0, 12345));
        assert_eq!(chain.len() as u8, g.stored_levels() - 1);
        assert!(slot < 8);
        // The chain is strictly ascending in level.
        for (i, n) in chain.iter().enumerate() {
            assert_eq!(n.level as usize, i + 1);
        }
    }

    #[test]
    fn root_slot_of_leaf_partitions_evenly() {
        let g = TreeGeometry::tiny(64);
        // 64 leaves over 8 root slots (L1 has 8 nodes, each a root child
        // covering 8 leaves).
        assert_eq!(g.root_slot_of_leaf(0), 0);
        assert_eq!(g.root_slot_of_leaf(7), 0);
        assert_eq!(g.root_slot_of_leaf(8), 1);
        assert_eq!(g.root_slot_of_leaf(63), 7);
    }

    #[test]
    fn root_slot_matches_ancestor_slot() {
        let g = TreeGeometry::paper_16gb();
        for &leaf in &[0u64, 77, 4095, (1 << 22) - 1] {
            let (_, slot) = g.ancestors(NodeId::new(0, leaf));
            assert_eq!(slot, g.root_slot_of_leaf(leaf));
        }
    }

    #[test]
    fn total_lines_covers_all_regions() {
        let g = TreeGeometry::tiny(64);
        // 64*64 data + 64 leaves + 8 L1 = 4168.
        assert_eq!(g.total_lines(), 64 * 64 + 64 + 8);
    }

    #[test]
    fn root_children_of_paper_tree() {
        let g = TreeGeometry::paper_16gb();
        let tops = g.root_children();
        assert_eq!(tops.len(), 2);
        assert!(tops.iter().all(|n| n.level == 7));
    }

    #[test]
    #[should_panic(expected = "not a data line")]
    fn leaf_of_metadata_panics() {
        let g = TreeGeometry::tiny(4);
        let _ = g.leaf_of_data(LineAddr::new(256));
    }
}
