//! The ECC-co-located MAC store ("sideband").
//!
//! User-data lines and leaf counter blocks each carry a 64-bit HMAC. A
//! 64 B line has no room for it, so — following Synergy (HPCA'18), which
//! the paper cites for exactly this — the MAC rides in the ECC chip of the
//! DIMM: it is transferred *with* its line at no extra memory traffic, is
//! persistent, and is just as tamperable as the line itself.
//!
//! The sideband is modelled as a map from line address to MAC, with the
//! same sparse-zero, snapshot and tamper semantics as
//! [`scue_nvm::NvmStore`]. Intermediate SIT nodes do *not* use the
//! sideband: their HMAC fits inside the 64 B node (Fig. 4).

use scue_nvm::LineAddr;
use std::collections::HashMap;

/// Persistent per-line MAC storage in the DIMM's ECC bits.
///
/// # Example
///
/// ```
/// use scue_itree::MacSideband;
/// use scue_nvm::LineAddr;
///
/// let mut macs = MacSideband::new();
/// assert_eq!(macs.get(LineAddr::new(0)), 0, "never-written lines have zero MACs");
/// macs.set(LineAddr::new(0), 0xABCD);
/// assert_eq!(macs.get(LineAddr::new(0)), 0xABCD);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MacSideband {
    macs: HashMap<LineAddr, u64>,
}

impl MacSideband {
    /// An empty sideband (all MACs zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the MAC stored for `addr` (zero if never written).
    pub fn get(&self, addr: LineAddr) -> u64 {
        self.macs.get(&addr).copied().unwrap_or(0)
    }

    /// Stores the MAC for `addr` — travels with the line's write, so it
    /// costs no extra memory access.
    pub fn set(&mut self, addr: LineAddr, mac: u64) {
        if mac == 0 {
            self.macs.remove(&addr);
        } else {
            self.macs.insert(addr, mac);
        }
    }

    /// Number of non-zero MACs stored.
    pub fn len(&self) -> usize {
        self.macs.len()
    }

    /// Whether no MACs are stored.
    pub fn is_empty(&self) -> bool {
        self.macs.is_empty()
    }

    /// Iterates over all stored (non-zero) MACs, order unspecified —
    /// callers that serialize must sort.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, u64)> + '_ {
        self.macs.iter().map(|(&a, &m)| (a, m))
    }

    /// Captures the sideband for crash experiments.
    pub fn snapshot(&self) -> MacSidebandSnapshot {
        MacSidebandSnapshot {
            macs: self.macs.clone(),
        }
    }

    /// Restores a captured sideband.
    pub fn restore(&mut self, snapshot: &MacSidebandSnapshot) {
        self.macs = snapshot.macs.clone();
    }

    /// Adversarial overwrite (the ECC bits are on the stolen DIMM too).
    /// Returns the previous MAC for replay recording.
    pub fn tamper(&mut self, addr: LineAddr, mac: u64) -> u64 {
        let old = self.get(addr);
        self.set(addr, mac);
        old
    }
}

/// A captured sideband image.
#[derive(Debug, Clone)]
pub struct MacSidebandSnapshot {
    macs: HashMap<LineAddr, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mac_is_zero() {
        let sb = MacSideband::new();
        assert_eq!(sb.get(LineAddr::new(99)), 0);
        assert!(sb.is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut sb = MacSideband::new();
        sb.set(LineAddr::new(1), 42);
        assert_eq!(sb.get(LineAddr::new(1)), 42);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn zero_set_stays_sparse() {
        let mut sb = MacSideband::new();
        sb.set(LineAddr::new(1), 42);
        sb.set(LineAddr::new(1), 0);
        assert!(sb.is_empty());
    }

    #[test]
    fn snapshot_restore() {
        let mut sb = MacSideband::new();
        sb.set(LineAddr::new(1), 42);
        let snap = sb.snapshot();
        sb.set(LineAddr::new(1), 7);
        sb.set(LineAddr::new(2), 8);
        sb.restore(&snap);
        assert_eq!(sb.get(LineAddr::new(1)), 42);
        assert_eq!(sb.get(LineAddr::new(2)), 0);
    }

    #[test]
    fn tamper_returns_old() {
        let mut sb = MacSideband::new();
        sb.set(LineAddr::new(3), 3);
        assert_eq!(sb.tamper(LineAddr::new(3), 9), 3);
        assert_eq!(sb.get(LineAddr::new(3)), 9);
    }
}
