//! Wider-node tree organisations: VAULT and MorphCtr (§VII related work).
//!
//! The paper's SIT stores 8 counters per 64 B node; VAULT packs more
//! (shorter, fatter trees at the cost of narrower counters), and MorphCtr
//! reaches 128 counters per node with morphable encoding. The discussion
//! section argues SCUE applies unchanged because counter-summing only
//! needs "parent counter = Σ child counters", which is arity-independent.
//!
//! This module provides the analytic model behind that argument: tree
//! height, node counts, NVM storage and crash-window length as functions
//! of node arity — the ablation the `tree_arity` harness prints.

/// A node organisation: how many counters (children) one 64 B node holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeOrganisation {
    /// Scheme label.
    pub name: &'static str,
    /// Counters per 64 B node.
    pub arity: u64,
    /// Counter width in bits (what fits after the embedded MAC).
    pub counter_bits: u32,
}

/// The organisations discussed by the paper and its related work.
pub const ORGANISATIONS: [NodeOrganisation; 4] = [
    NodeOrganisation {
        name: "SIT (paper)",
        arity: 8,
        counter_bits: 56,
    },
    NodeOrganisation {
        name: "SGX counters",
        arity: 8,
        counter_bits: 56,
    },
    NodeOrganisation {
        name: "VAULT",
        arity: 16,
        counter_bits: 28,
    },
    NodeOrganisation {
        name: "MorphCtr",
        arity: 128,
        counter_bits: 3, // morphable: 3-bit minors + shared majors
    },
];

/// Analytic shape of a tree over `leaf_count` leaves with the given
/// arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Fan-out used.
    pub arity: u64,
    /// Levels including the on-chip root.
    pub total_levels: u32,
    /// NVM-resident nodes (all stored levels above the leaves).
    pub interior_nodes: u64,
    /// NVM bytes for the interior nodes.
    pub interior_bytes: u64,
}

/// Computes the tree shape over `leaf_count` leaf counter blocks.
///
/// # Panics
///
/// Panics if `arity < 2` or `leaf_count == 0`.
pub fn tree_shape(leaf_count: u64, arity: u64) -> TreeShape {
    assert!(arity >= 2, "fan-out must be at least 2");
    assert!(leaf_count > 0, "need at least one leaf");
    let mut level = leaf_count;
    let mut interior = 0u64;
    let mut levels = 1u32; // leaf level
    while level > arity {
        level = level.div_ceil(arity);
        interior += level;
        levels += 1;
    }
    // On-chip root on top of the last stored level.
    levels += 1;
    TreeShape {
        arity,
        total_levels: levels,
        interior_nodes: interior,
        interior_bytes: interior * 64,
    }
}

/// Length of the eager-propagation crash window for a tree of
/// `total_levels` with `hash_latency`-cycle HMACs and `read_latency`
/// cycles per uncached ancestor fetch on a cold branch: the quantity SCUE
/// reduces to zero (§IV-A).
pub fn crash_window_cycles(
    total_levels: u32,
    hash_latency: u64,
    read_latency: u64,
    cached_fraction: f64,
) -> u64 {
    let interior_levels = total_levels.saturating_sub(2) as u64; // exclude leaves + root
    let cold = (interior_levels as f64 * (1.0 - cached_fraction)).ceil() as u64;
    // SIT computes branch HMACs in parallel: one hash latency, plus the
    // serial reads of uncached ancestors.
    cold * read_latency + hash_latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_recovered() {
        // 16 GB → 2^22 leaves → 9 levels at arity 8 (Table II).
        let shape = tree_shape(1 << 22, 8);
        assert_eq!(shape.total_levels, 9);
    }

    #[test]
    fn wider_nodes_flatten_the_tree() {
        let sit = tree_shape(1 << 22, 8);
        let vault = tree_shape(1 << 22, 16);
        let morph = tree_shape(1 << 22, 128);
        assert!(vault.total_levels < sit.total_levels);
        assert!(morph.total_levels < vault.total_levels);
        assert!(morph.interior_bytes < vault.interior_bytes);
        assert!(vault.interior_bytes < sit.interior_bytes);
    }

    #[test]
    fn interior_counts_are_exact_for_small_trees() {
        // 64 leaves at arity 8: one level of 8 interior nodes.
        let shape = tree_shape(64, 8);
        assert_eq!(shape.interior_nodes, 8);
        assert_eq!(shape.total_levels, 3);
        // 8 leaves: no interior level, root directly above.
        let shape = tree_shape(8, 8);
        assert_eq!(shape.interior_nodes, 0);
        assert_eq!(shape.total_levels, 2);
    }

    #[test]
    fn crash_window_shrinks_with_height_and_vanishes_never() {
        let tall = crash_window_cycles(9, 40, 126, 0.9);
        let flat = crash_window_cycles(4, 40, 126, 0.9);
        assert!(flat <= tall);
        assert!(flat >= 40, "at least one hash latency remains");
    }

    #[test]
    fn fully_cached_branch_still_pays_the_hash() {
        assert_eq!(crash_window_cycles(9, 40, 126, 1.0), 40);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_arity_rejected() {
        let _ = tree_shape(64, 1);
    }
}
