//! SGX-style Integrity Tree logic (Fig. 4).
//!
//! [`SitContext`] binds a [`TreeGeometry`] to a [`SecretKey`] and provides
//! every node-level operation the update schemes and recovery need:
//!
//! * MAC computation — `node_mac` for intermediate nodes (address + own
//!   counters + parent counter) and `leaf_mac` for leaf counter blocks
//!   (address + full block content + parent counter);
//! * dummy counters (Fig. 7) — `leaf_dummy` / `node_dummy`, the sum of a
//!   node's own counters, equal to its parent counter under eager updates;
//! * typed NVM access — read/write [`SitNode`]s and
//!   [`CounterBlock`]s at their geometric addresses;
//! * `rebuild_all` — a whole-tree construction used to initialise
//!   experiments and as the reference model in tests.

use crate::geometry::{NodeId, TreeGeometry};
use crate::node::{SitNode, COUNTER_MASK};
use crate::root::RootRegister;
use crate::sideband::MacSideband;
use scue_crypto::cme::CounterBlock;
use scue_crypto::hmac::sit_node_hmac;
use scue_crypto::SecretKey;
use scue_nvm::NvmStore;

/// Context for SIT operations: geometry + key.
///
/// # Example
///
/// ```
/// use scue_crypto::SecretKey;
/// use scue_itree::{SitContext, TreeGeometry};
///
/// let ctx = SitContext::new(TreeGeometry::tiny(8), SecretKey::from_seed(1));
/// assert_eq!(ctx.geometry().leaf_count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SitContext {
    geometry: TreeGeometry,
    key: SecretKey,
}

impl SitContext {
    /// Creates a context.
    pub fn new(geometry: TreeGeometry, key: SecretKey) -> Self {
        Self { geometry, key }
    }

    /// The tree geometry.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// The secret key (on-chip only).
    pub fn key(&self) -> &SecretKey {
        &self.key
    }

    /// The dummy counter of a leaf: its wrap-weighted write count, i.e.
    /// the value the parent's covering counter holds when fully
    /// propagated.
    ///
    /// *Reproduction note:* the paper increments parent counters by one
    /// per persist; we use the write-count delta instead, which is
    /// identical except across minor-counter overflows, where the delta
    /// formulation keeps the counter-summing invariant exact (see
    /// DESIGN.md).
    pub fn leaf_dummy(&self, block: &CounterBlock) -> u64 {
        block.write_count() & COUNTER_MASK
    }

    /// The dummy counter of an intermediate node (Fig. 7): the sum of its
    /// eight counters.
    pub fn node_dummy(&self, node: &SitNode) -> u64 {
        node.counter_sum()
    }

    /// MAC of an intermediate node: hash(address, own counters, parent
    /// counter).
    pub fn node_mac(&self, node_id: NodeId, node: &SitNode, parent_counter: u64) -> u64 {
        let addr = self.geometry.node_addr(node_id);
        sit_node_hmac(&self.key, addr.raw(), node.counters(), parent_counter)
    }

    /// MAC of a leaf counter block: hash(address, packed block content,
    /// parent counter). The block's 64 B line is bound wholesale so every
    /// minor counter is covered.
    pub fn leaf_mac(&self, leaf: NodeId, block: &CounterBlock, parent_counter: u64) -> u64 {
        debug_assert_eq!(leaf.level, 0, "leaf_mac takes level-0 nodes");
        let addr = self.geometry.node_addr(leaf);
        let line = block.to_line();
        let mut words = [0u64; 8];
        for (i, word) in words.iter_mut().enumerate() {
            *word = u64::from_le_bytes(line[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        sit_node_hmac(&self.key, addr.raw(), &words, parent_counter)
    }

    /// Reads an intermediate node from NVM (zero node if never written).
    ///
    /// # Panics
    ///
    /// Panics if `node_id` is the leaf level — use [`SitContext::read_leaf`].
    pub fn read_node(&self, store: &NvmStore, node_id: NodeId) -> SitNode {
        assert!(
            node_id.level > 0,
            "level 0 holds counter blocks, not SitNodes"
        );
        SitNode::from_line(&store.read_line(self.geometry.node_addr(node_id)))
    }

    /// Writes an intermediate node to NVM.
    ///
    /// # Panics
    ///
    /// Panics if `node_id` is the leaf level.
    pub fn write_node(&self, store: &mut NvmStore, node_id: NodeId, node: &SitNode) {
        assert!(
            node_id.level > 0,
            "level 0 holds counter blocks, not SitNodes"
        );
        store.write_line(self.geometry.node_addr(node_id), node.to_line());
    }

    /// Reads a leaf counter block from NVM.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not level 0.
    pub fn read_leaf(&self, store: &NvmStore, leaf: NodeId) -> CounterBlock {
        assert_eq!(leaf.level, 0, "read_leaf takes level-0 nodes");
        CounterBlock::from_line(&store.read_line(self.geometry.node_addr(leaf)))
    }

    /// Writes a leaf counter block and its sideband MAC to NVM — one
    /// memory write (the MAC rides the ECC bits).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not level 0.
    pub fn write_leaf(
        &self,
        store: &mut NvmStore,
        sideband: &mut MacSideband,
        leaf: NodeId,
        block: &CounterBlock,
        mac: u64,
    ) {
        assert_eq!(leaf.level, 0, "write_leaf takes level-0 nodes");
        let addr = self.geometry.node_addr(leaf);
        store.write_line(addr, block.to_line());
        sideband.set(addr, mac);
    }

    /// Reads a leaf's sideband MAC.
    pub fn read_leaf_mac(&self, sideband: &MacSideband, leaf: NodeId) -> u64 {
        sideband.get(self.geometry.node_addr(leaf))
    }

    /// Verifies an intermediate node against its parent counter:
    /// recomputes the MAC and compares with the stored one.
    ///
    /// A zero node with a zero MAC is the never-written state and is
    /// valid iff the parent counter is also zero (nothing was ever
    /// persisted below it).
    pub fn verify_node(&self, node_id: NodeId, node: &SitNode, parent_counter: u64) -> bool {
        if node.hmac == 0 && node.counter_sum() == 0 {
            return parent_counter == 0;
        }
        self.node_mac(node_id, node, parent_counter) == node.hmac
    }

    /// Verifies a leaf counter block against its parent counter and
    /// sideband MAC, with the same never-written convention.
    pub fn verify_leaf(
        &self,
        leaf: NodeId,
        block: &CounterBlock,
        stored_mac: u64,
        parent_counter: u64,
    ) -> bool {
        if stored_mac == 0 && block.write_count() == 0 {
            return parent_counter == 0;
        }
        self.leaf_mac(leaf, block, parent_counter) == stored_mac
    }

    /// Rebuilds the *entire* tree from the leaf blocks currently in
    /// `store`, writing fully-propagated intermediate nodes (counters =
    /// child sums, MACs keyed by parent sums), refreshing every leaf's
    /// sideband MAC, and returning the implied root.
    ///
    /// This is the reference eager construction: tests compare scheme
    /// states against it, experiments use it to start from a consistent
    /// protected image.
    pub fn rebuild_all(&self, store: &mut NvmStore, sideband: &mut MacSideband) -> RootRegister {
        let geom = &self.geometry;
        // Pass 1: counters per level, bottom-up.
        let mut level_counters: Vec<Vec<u64>> = Vec::with_capacity(geom.stored_levels() as usize);
        let leaf_dummies: Vec<u64> = (0..geom.leaf_count())
            .map(|i| self.leaf_dummy(&self.read_leaf(store, NodeId::new(0, i))))
            .collect();
        let mut prev = leaf_dummies;
        for level in 1..geom.stored_levels() {
            let count = geom.level_count(level) as usize;
            let mut counters = vec![0u64; count * 8];
            for (child_idx, &dummy) in prev.iter().enumerate() {
                counters[child_idx] = dummy;
            }
            // Collapse into per-node arrays and compute this level's dummies.
            let mut dummies = vec![0u64; count];
            for node_idx in 0..count {
                let slice = &counters[node_idx * 8..node_idx * 8 + 8];
                dummies[node_idx] =
                    slice.iter().fold(0u64, |acc, &c| acc.wrapping_add(c)) & COUNTER_MASK;
            }
            level_counters.push(counters);
            prev = dummies;
        }
        // Root: sums of the top stored level's dummies, per slot.
        let mut root = RootRegister::new();
        for (i, &dummy) in prev.iter().enumerate() {
            root.add(i % 8, dummy);
        }
        // Pass 2: materialise nodes with MACs (parent counters now known).
        for level in 1..geom.stored_levels() {
            let counters = &level_counters[(level - 1) as usize];
            for node_idx in 0..geom.level_count(level) {
                let node_id = NodeId::new(level, node_idx);
                let mut node = SitNode::new();
                for slot in 0..8 {
                    node.set_counter(slot, counters[node_idx as usize * 8 + slot]);
                }
                if node.counter_sum() == 0 {
                    // Never-written convention: zero node, zero MAC; skip
                    // the write so untouched subtrees stay sparse.
                    continue;
                }
                // Fully propagated, so the parent counter equals this
                // node's own dummy counter.
                node.hmac = self.node_mac(node_id, &node, self.node_dummy(&node));
                self.write_node(store, node_id, &node);
            }
        }
        // Pass 3: leaf MACs (parent counter = leaf dummy when propagated).
        for leaf_idx in 0..geom.leaf_count() {
            let leaf = NodeId::new(0, leaf_idx);
            let block = self.read_leaf(store, leaf);
            let mac = if block.write_count() == 0 {
                0 // never-written convention
            } else {
                self.leaf_mac(leaf, &block, self.leaf_dummy(&block))
            };
            sideband.set(geom.node_addr(leaf), mac);
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Parent;
    use scue_nvm::LineAddr;

    fn ctx() -> SitContext {
        SitContext::new(TreeGeometry::tiny(64), SecretKey::from_seed(42))
    }

    fn bump_leaf(
        ctx: &SitContext,
        store: &mut NvmStore,
        leaf_idx: u64,
        minor: usize,
        times: usize,
    ) {
        let leaf = NodeId::new(0, leaf_idx);
        let mut block = ctx.read_leaf(store, leaf);
        for _ in 0..times {
            block.increment(minor).unwrap();
        }
        store.write_line(ctx.geometry().node_addr(leaf), block.to_line());
    }

    #[test]
    fn node_roundtrip_through_store() {
        let c = ctx();
        let mut store = NvmStore::new();
        let mut node = SitNode::new();
        node.set_counter(2, 7);
        node.hmac = 99;
        c.write_node(&mut store, NodeId::new(1, 3), &node);
        assert_eq!(c.read_node(&store, NodeId::new(1, 3)), node);
    }

    #[test]
    fn unwritten_node_is_zero() {
        let c = ctx();
        let store = NvmStore::new();
        assert_eq!(c.read_node(&store, NodeId::new(1, 0)), SitNode::new());
    }

    #[test]
    fn leaf_roundtrip_with_mac() {
        let c = ctx();
        let mut store = NvmStore::new();
        let mut sb = MacSideband::new();
        let mut block = CounterBlock::new();
        block.increment(5).unwrap();
        let leaf = NodeId::new(0, 9);
        let mac = c.leaf_mac(leaf, &block, c.leaf_dummy(&block));
        c.write_leaf(&mut store, &mut sb, leaf, &block, mac);
        assert_eq!(c.read_leaf(&store, leaf), block);
        assert_eq!(c.read_leaf_mac(&sb, leaf), mac);
        assert!(c.verify_leaf(leaf, &block, mac, c.leaf_dummy(&block)));
    }

    #[test]
    fn verify_rejects_wrong_parent_counter() {
        let c = ctx();
        let mut block = CounterBlock::new();
        block.increment(0).unwrap();
        let leaf = NodeId::new(0, 0);
        let mac = c.leaf_mac(leaf, &block, 1);
        assert!(c.verify_leaf(leaf, &block, mac, 1));
        assert!(!c.verify_leaf(leaf, &block, mac, 2));
    }

    #[test]
    fn never_written_state_verifies_iff_parent_zero() {
        let c = ctx();
        let block = CounterBlock::new();
        let leaf = NodeId::new(0, 1);
        assert!(c.verify_leaf(leaf, &block, 0, 0));
        assert!(!c.verify_leaf(leaf, &block, 0, 5));
        let node = SitNode::new();
        assert!(c.verify_node(NodeId::new(1, 0), &node, 0));
        assert!(!c.verify_node(NodeId::new(1, 0), &node, 1));
    }

    #[test]
    fn rebuild_all_produces_consistent_tree() {
        let c = ctx();
        let mut store = NvmStore::new();
        let mut sb = MacSideband::new();
        bump_leaf(&c, &mut store, 0, 0, 3);
        bump_leaf(&c, &mut store, 9, 4, 2);
        bump_leaf(&c, &mut store, 63, 63, 1);
        let root = c.rebuild_all(&mut store, &mut sb);

        // Root slot sums: leaves 0..8 -> slot 0 (3+2=5? leaf 9 is in L1
        // node 1 -> slot 1), leaf 63 -> slot 7.
        assert_eq!(root.counter(0), 3);
        assert_eq!(root.counter(1), 2);
        assert_eq!(root.counter(7), 1);
        assert_eq!(root.counters().iter().sum::<u64>(), 6);

        // Every written leaf verifies against its reconstructed parent.
        for leaf_idx in [0u64, 9, 63] {
            let leaf = NodeId::new(0, leaf_idx);
            let block = c.read_leaf(&store, leaf);
            let parent = match c.geometry().parent(leaf) {
                Parent::Node(p) => p,
                Parent::Root(_) => unreachable!("3-level tree"),
            };
            let pnode = c.read_node(&store, parent);
            let pcounter = pnode.counter(leaf.parent_slot());
            assert_eq!(pcounter, c.leaf_dummy(&block));
            let mac = c.read_leaf_mac(&sb, leaf);
            assert!(c.verify_leaf(leaf, &block, mac, pcounter));
        }

        // Every L1 node verifies against the root counter.
        for node_idx in 0..8 {
            let node_id = NodeId::new(1, node_idx);
            let node = c.read_node(&store, node_id);
            assert!(c.verify_node(node_id, &node, root.counter(node_idx as usize)));
        }
    }

    #[test]
    fn rebuild_is_idempotent() {
        let c = ctx();
        let mut store = NvmStore::new();
        let mut sb = MacSideband::new();
        bump_leaf(&c, &mut store, 5, 5, 5);
        let root1 = c.rebuild_all(&mut store, &mut sb);
        let snap = store.snapshot();
        let root2 = c.rebuild_all(&mut store, &mut sb);
        assert_eq!(root1, root2);
        // Store content unchanged by the second rebuild.
        for (addr, line) in store.iter() {
            let _ = (addr, line);
        }
        store.restore(&snap);
        let root3 = c.rebuild_all(&mut store, &mut sb);
        assert_eq!(root1, root3);
    }

    #[test]
    fn tampered_leaf_fails_verification_after_rebuild() {
        let c = ctx();
        let mut store = NvmStore::new();
        let mut sb = MacSideband::new();
        bump_leaf(&c, &mut store, 3, 1, 4);
        c.rebuild_all(&mut store, &mut sb);
        // Attacker rolls leaf 3's counter forward without the key.
        let leaf = NodeId::new(0, 3);
        let mut block = c.read_leaf(&store, leaf);
        block.increment(1).unwrap();
        store.tamper_line(c.geometry().node_addr(leaf), block.to_line());
        let mac = c.read_leaf_mac(&sb, leaf);
        assert!(!c.verify_leaf(leaf, &block, mac, c.leaf_dummy(&block)));
    }

    #[test]
    fn empty_tree_rebuild_gives_zero_root() {
        let c = ctx();
        let mut store = NvmStore::new();
        let mut sb = MacSideband::new();
        let root = c.rebuild_all(&mut store, &mut sb);
        assert_eq!(root, RootRegister::new());
        assert_eq!(store.touched_lines(), 0, "zero nodes stay sparse");
    }

    #[test]
    fn leaf_mac_depends_on_minor_slot_values() {
        let c = ctx();
        let leaf = NodeId::new(0, 0);
        let mut a = CounterBlock::new();
        a.increment(0).unwrap();
        let mut b = CounterBlock::new();
        b.increment(1).unwrap();
        // Same write_count, different minors: MACs must differ.
        assert_ne!(c.leaf_mac(leaf, &a, 1), c.leaf_mac(leaf, &b, 1));
    }

    #[test]
    fn geometry_accessible() {
        let c = ctx();
        assert!(c.geometry().is_data_line(LineAddr::new(0)));
    }
}
