//! Bonsai Merkle Tree logic (Fig. 3) — the comparison substrate.
//!
//! A BMT protects the CME counter blocks: each parent node holds the
//! HMACs of its eight children's full line contents, so high levels are
//! pure functions of low levels and the tree reconstructs bottom-up
//! naturally — the property §IV-B retrofits onto SIT via counter-summing.
//! The BMT root is the keyed hash over the top level's node lines, held
//! on-chip.

use crate::geometry::{NodeId, TreeGeometry};
use crate::node::BmtNode;
use scue_crypto::hmac::bmt_child_hmac;
use scue_crypto::siphash::WordHasher;
use scue_crypto::SecretKey;
use scue_nvm::NvmStore;

/// The on-chip BMT root: one keyed digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BmtRoot(pub u64);

/// Context for BMT operations: geometry + key.
///
/// The geometry is shared with SIT (leaves are the same counter blocks);
/// BMT nodes occupy the same metadata addresses, holding HMACs instead of
/// counters.
#[derive(Debug, Clone)]
pub struct BmtContext {
    geometry: TreeGeometry,
    key: SecretKey,
}

impl BmtContext {
    /// Creates a context.
    pub fn new(geometry: TreeGeometry, key: SecretKey) -> Self {
        Self { geometry, key }
    }

    /// The tree geometry.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// The HMAC a parent stores for child `child`: keyed hash of the
    /// child's address and current line content.
    pub fn child_mac(&self, store: &NvmStore, child: NodeId) -> u64 {
        let addr = self.geometry.node_addr(child);
        bmt_child_hmac(&self.key, addr.raw(), &store.read_line(addr))
    }

    /// Reads a BMT node (levels >= 1).
    ///
    /// # Panics
    ///
    /// Panics if `node_id` is level 0 (leaves are counter blocks).
    pub fn read_node(&self, store: &NvmStore, node_id: NodeId) -> BmtNode {
        assert!(node_id.level > 0, "level 0 holds counter blocks");
        BmtNode::from_line(&store.read_line(self.geometry.node_addr(node_id)))
    }

    /// Writes a BMT node.
    ///
    /// # Panics
    ///
    /// Panics if `node_id` is level 0.
    pub fn write_node(&self, store: &mut NvmStore, node_id: NodeId, node: &BmtNode) {
        assert!(node_id.level > 0, "level 0 holds counter blocks");
        store.write_line(self.geometry.node_addr(node_id), node.to_line());
    }

    /// Rebuilds every intermediate node from the leaves up and returns
    /// the root digest — both the initial construction and the
    /// post-crash reconstruction (they are the same computation in a
    /// BMT, which is its whole appeal).
    pub fn rebuild_all(&self, store: &mut NvmStore) -> BmtRoot {
        let geom = &self.geometry;
        for level in 1..geom.stored_levels() {
            for node_idx in 0..geom.level_count(level) {
                let node_id = NodeId::new(level, node_idx);
                let mut node = BmtNode::new();
                for child in geom.children(node_id) {
                    node.set_child_hmac(child.parent_slot(), self.child_mac(store, child));
                }
                self.write_node(store, node_id, &node);
            }
        }
        self.root_digest(store)
    }

    /// The current root digest: keyed hash over the top stored level's
    /// line contents.
    pub fn root_digest(&self, store: &NvmStore) -> BmtRoot {
        let mut h = WordHasher::new(&self.key);
        h.write_u64(0x424D_545F_524F_4F54); // domain tag "BMT_ROOT"
        for top in self.geometry.root_children() {
            let line = store.read_line(self.geometry.node_addr(top));
            for chunk in line.chunks_exact(8) {
                h.write_u64(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
        }
        BmtRoot(h.finish())
    }

    /// Verifies a child against its parent's stored HMAC.
    pub fn verify_child(&self, store: &NvmStore, child: NodeId) -> bool {
        match self.geometry.parent(child) {
            crate::geometry::Parent::Node(parent) => {
                let pnode = self.read_node(store, parent);
                pnode.child_hmac(child.parent_slot()) == self.child_mac(store, child)
            }
            crate::geometry::Parent::Root(_) => true, // covered by the root digest
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scue_crypto::cme::CounterBlock;

    fn ctx() -> BmtContext {
        BmtContext::new(TreeGeometry::tiny(64), SecretKey::from_seed(7))
    }

    fn write_leaf(ctx: &BmtContext, store: &mut NvmStore, idx: u64, bumps: usize) {
        let mut block = CounterBlock::new();
        for _ in 0..bumps {
            block.increment(0).unwrap();
        }
        store.write_line(
            ctx.geometry().node_addr(NodeId::new(0, idx)),
            block.to_line(),
        );
    }

    #[test]
    fn rebuild_then_verify_all_children() {
        let c = ctx();
        let mut store = NvmStore::new();
        write_leaf(&c, &mut store, 0, 1);
        write_leaf(&c, &mut store, 33, 2);
        c.rebuild_all(&mut store);
        for idx in 0..64 {
            assert!(c.verify_child(&store, NodeId::new(0, idx)), "leaf {idx}");
        }
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let c = ctx();
        let mut store = NvmStore::new();
        write_leaf(&c, &mut store, 0, 1);
        let r1 = c.rebuild_all(&mut store);
        write_leaf(&c, &mut store, 0, 2);
        let r2 = c.rebuild_all(&mut store);
        assert_ne!(r1, r2);
    }

    #[test]
    fn reconstruction_matches_original_root() {
        let c = ctx();
        let mut store = NvmStore::new();
        write_leaf(&c, &mut store, 5, 3);
        let original = c.rebuild_all(&mut store);
        // Wipe intermediates (a crash lost them), keep leaves.
        for level in 1..c.geometry().stored_levels() {
            for idx in 0..c.geometry().level_count(level) {
                let addr = c.geometry().node_addr(NodeId::new(level, idx));
                store.tamper_line(addr, [0u8; 64]);
            }
        }
        let rebuilt = c.rebuild_all(&mut store);
        assert_eq!(original, rebuilt, "BMT reconstructs from leaves alone");
    }

    #[test]
    fn tampered_leaf_fails_child_verification() {
        let c = ctx();
        let mut store = NvmStore::new();
        write_leaf(&c, &mut store, 9, 2);
        c.rebuild_all(&mut store);
        write_leaf(&c, &mut store, 9, 5); // "attack": change without re-MAC
        assert!(!c.verify_child(&store, NodeId::new(0, 9)));
    }

    #[test]
    fn tampered_leaf_changes_reconstructed_root() {
        let c = ctx();
        let mut store = NvmStore::new();
        write_leaf(&c, &mut store, 9, 2);
        let original = c.rebuild_all(&mut store);
        write_leaf(&c, &mut store, 9, 5);
        let attacked = c.rebuild_all(&mut store);
        assert_ne!(original, attacked, "root comparison catches the tamper");
    }
}
