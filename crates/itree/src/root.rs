//! On-chip non-volatile root registers.
//!
//! The root is the only tree node that *never* leaves the trusted domain:
//! it lives in a non-volatile on-chip register, survives power failure,
//! and cannot be tampered with (§III-A). Like any SIT node it is eight
//! counters, but it carries no HMAC — nothing above it to key one.
//!
//! SCUE keeps **two** roots (Fig. 6c): a `Running_root` updated lazily
//! like any parent node (used for run-time verification) and a
//! `Recovery_root` updated instantaneously on every leaf persist (used to
//! check counter-summing reconstruction after a crash). Both are 64 B, so
//! SCUE's on-chip cost is 128 B of registers (§V-F).

use crate::node::{COUNTERS_PER_NODE, COUNTER_MASK};

/// An on-chip root register: eight 56-bit counters, non-volatile,
/// untamperable.
///
/// # Example
///
/// ```
/// use scue_itree::RootRegister;
///
/// let mut root = RootRegister::new();
/// root.add(2, 1);
/// root.add(2, 41);
/// assert_eq!(root.counter(2), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RootRegister {
    counters: [u64; COUNTERS_PER_NODE],
}

impl RootRegister {
    /// A zeroed root (fresh machine / fresh key domain).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads counter `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn counter(&self, slot: usize) -> u64 {
        self.counters[slot]
    }

    /// All eight counters.
    pub fn counters(&self) -> &[u64; COUNTERS_PER_NODE] {
        &self.counters
    }

    /// Adds `delta` to counter `slot` (mod 2^56) — the SCUE shortcut
    /// update is `add(slot, persist_delta)` with no other tree work.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn add(&mut self, slot: usize, delta: u64) {
        self.counters[slot] = self.counters[slot].wrapping_add(delta) & COUNTER_MASK;
    }

    /// Overwrites counter `slot` (used by eager propagation and by
    /// recovery when installing a reconstructed root).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn set(&mut self, slot: usize, value: u64) {
        self.counters[slot] = value & COUNTER_MASK;
    }

    /// Register size in bytes (for the §V-F overhead accounting).
    pub const fn size_bytes() -> usize {
        COUNTERS_PER_NODE * 8
    }
}

impl std::fmt::Display for RootRegister {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Root{:?}", self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_root_is_zero() {
        let root = RootRegister::new();
        assert!(root.counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn add_accumulates_per_slot() {
        let mut root = RootRegister::new();
        root.add(0, 5);
        root.add(7, 2);
        root.add(0, 1);
        assert_eq!(root.counter(0), 6);
        assert_eq!(root.counter(7), 2);
        assert_eq!(root.counter(3), 0);
    }

    #[test]
    fn add_wraps_mod_2_56() {
        let mut root = RootRegister::new();
        root.set(0, COUNTER_MASK);
        root.add(0, 1);
        assert_eq!(root.counter(0), 0);
    }

    #[test]
    fn set_truncates() {
        let mut root = RootRegister::new();
        root.set(1, u64::MAX);
        assert_eq!(root.counter(1), COUNTER_MASK);
    }

    #[test]
    fn size_is_64_bytes() {
        assert_eq!(RootRegister::size_bytes(), 64);
    }

    #[test]
    fn equality_detects_divergence() {
        let mut a = RootRegister::new();
        let b = RootRegister::new();
        assert_eq!(a, b);
        a.add(4, 1);
        assert_ne!(a, b);
    }
}
