//! Packed 64 B node formats for SIT and BMT (Fig. 4).
//!
//! An SIT node is eight 56-bit counters plus one 64-bit HMAC: exactly
//! `8 × 7 + 8 = 64` bytes. The 56-bit range (~10^16) exceeds NVM endurance
//! (10^7–10^12 writes), so intermediate counters never overflow in a
//! device lifetime — which is why SCUE's counter sums are safe.
//!
//! A BMT node is eight 64-bit HMACs of its children.

use scue_nvm::LINE_BYTES;
use scue_util::obs::span;

/// One 64 B line of raw content.
pub type Line = [u8; LINE_BYTES];

/// Counters per node (and children per node).
pub const COUNTERS_PER_NODE: usize = 8;

/// Mask for a 56-bit counter.
pub const COUNTER_MASK: u64 = (1 << 56) - 1;

/// An SGX-style integrity-tree node: 8 × 56-bit counters + 64-bit HMAC.
///
/// # Example
///
/// ```
/// use scue_itree::SitNode;
///
/// let mut node = SitNode::new();
/// node.set_counter(3, 41);
/// node.bump_counter(3);
/// assert_eq!(node.counter(3), 42);
/// assert_eq!(node.counter_sum(), 42); // the dummy counter (Fig. 7)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SitNode {
    counters: [u64; COUNTERS_PER_NODE],
    /// The node's HMAC (hash of address, own counters, parent counter).
    pub hmac: u64,
}

impl SitNode {
    /// A zero node — the implicit content of never-written tree lines.
    pub fn new() -> Self {
        Self {
            counters: [0; COUNTERS_PER_NODE],
            hmac: 0,
        }
    }

    /// Reads counter `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn counter(&self, slot: usize) -> u64 {
        self.counters[slot]
    }

    /// All eight counters.
    pub fn counters(&self) -> &[u64; COUNTERS_PER_NODE] {
        &self.counters
    }

    /// Sets counter `slot`, truncating to 56 bits.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn set_counter(&mut self, slot: usize, value: u64) {
        self.counters[slot] = value & COUNTER_MASK;
    }

    /// Increments counter `slot` by one (mod 2^56).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn bump_counter(&mut self, slot: usize) {
        self.counters[slot] = (self.counters[slot] + 1) & COUNTER_MASK;
    }

    /// Adds `delta` to counter `slot` (mod 2^56).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn add_counter(&mut self, slot: usize, delta: u64) {
        self.counters[slot] = (self.counters[slot].wrapping_add(delta)) & COUNTER_MASK;
    }

    /// The *dummy counter* (Fig. 7): the sum of all eight counters,
    /// mod 2^56. Under eager updates this equals the node's counter in
    /// its parent, which is exactly what SCUE exploits to skip the parent
    /// read.
    pub fn counter_sum(&self) -> u64 {
        self.counters
            .iter()
            .fold(0u64, |acc, &c| acc.wrapping_add(c))
            & COUNTER_MASK
    }

    /// Packs to a 64 B line: counters as 7-byte little-endian fields,
    /// then the 8-byte HMAC.
    pub fn to_line(&self) -> Line {
        let _span = span::enter("codec.encode");
        let mut line = [0u8; LINE_BYTES];
        for (i, &c) in self.counters.iter().enumerate() {
            let bytes = c.to_le_bytes();
            line[i * 7..(i + 1) * 7].copy_from_slice(&bytes[..7]);
        }
        line[56..].copy_from_slice(&self.hmac.to_le_bytes());
        line
    }

    /// Unpacks a node from a 64 B line.
    pub fn from_line(line: &Line) -> Self {
        let _span = span::enter("codec.decode");
        let mut counters = [0u64; COUNTERS_PER_NODE];
        for (i, counter) in counters.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes[..7].copy_from_slice(&line[i * 7..(i + 1) * 7]);
            *counter = u64::from_le_bytes(bytes);
        }
        let hmac = u64::from_le_bytes(line[56..].try_into().expect("8 bytes"));
        Self { counters, hmac }
    }
}

impl Default for SitNode {
    fn default() -> Self {
        Self::new()
    }
}

/// A Bonsai-Merkle-Tree node: eight HMACs of its eight children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BmtNode {
    hmacs: [u64; COUNTERS_PER_NODE],
}

impl BmtNode {
    /// A zero node.
    pub fn new() -> Self {
        Self {
            hmacs: [0; COUNTERS_PER_NODE],
        }
    }

    /// Reads the HMAC for child `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn child_hmac(&self, slot: usize) -> u64 {
        self.hmacs[slot]
    }

    /// Sets the HMAC for child `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn set_child_hmac(&mut self, slot: usize, hmac: u64) {
        self.hmacs[slot] = hmac;
    }

    /// Packs to a 64 B line (eight LE u64s).
    pub fn to_line(&self) -> Line {
        let _span = span::enter("codec.encode");
        let mut line = [0u8; LINE_BYTES];
        for (i, &h) in self.hmacs.iter().enumerate() {
            line[i * 8..(i + 1) * 8].copy_from_slice(&h.to_le_bytes());
        }
        line
    }

    /// Unpacks a node from a 64 B line.
    pub fn from_line(line: &Line) -> Self {
        let _span = span::enter("codec.decode");
        let mut hmacs = [0u64; COUNTERS_PER_NODE];
        for (i, hmac) in hmacs.iter_mut().enumerate() {
            *hmac = u64::from_le_bytes(line[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        Self { hmacs }
    }
}

impl Default for BmtNode {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sit_roundtrip_exact() {
        let mut node = SitNode::new();
        for i in 0..8 {
            node.set_counter(i, (0xAB00_0000_0000_00 + i as u64 * 3) & COUNTER_MASK);
        }
        node.hmac = 0xDEAD_BEEF_0BAD_F00D;
        assert_eq!(SitNode::from_line(&node.to_line()), node);
    }

    #[test]
    fn sit_counter_truncates_to_56_bits() {
        let mut node = SitNode::new();
        node.set_counter(0, u64::MAX);
        assert_eq!(node.counter(0), COUNTER_MASK);
        let back = SitNode::from_line(&node.to_line());
        assert_eq!(back.counter(0), COUNTER_MASK);
    }

    #[test]
    fn sit_bump_wraps_at_56_bits() {
        let mut node = SitNode::new();
        node.set_counter(1, COUNTER_MASK);
        node.bump_counter(1);
        assert_eq!(node.counter(1), 0);
    }

    #[test]
    fn counter_sum_is_dummy_counter() {
        let mut node = SitNode::new();
        node.set_counter(0, 10);
        node.set_counter(5, 32);
        assert_eq!(node.counter_sum(), 42);
    }

    #[test]
    fn counter_sum_wraps_mod_2_56() {
        let mut node = SitNode::new();
        node.set_counter(0, COUNTER_MASK);
        node.set_counter(1, 2);
        assert_eq!(node.counter_sum(), 1);
    }

    #[test]
    fn add_counter_accumulates() {
        let mut node = SitNode::new();
        node.add_counter(2, 40);
        node.add_counter(2, 2);
        assert_eq!(node.counter(2), 42);
    }

    #[test]
    fn zero_node_packs_to_zero_line() {
        assert_eq!(SitNode::new().to_line(), [0u8; LINE_BYTES]);
        assert_eq!(BmtNode::new().to_line(), [0u8; LINE_BYTES]);
    }

    #[test]
    fn bmt_roundtrip_exact() {
        let mut node = BmtNode::new();
        for i in 0..8 {
            node.set_child_hmac(i, 0x1111_2222_3333_4444 * (i as u64 + 1));
        }
        assert_eq!(BmtNode::from_line(&node.to_line()), node);
    }

    #[test]
    fn sit_hmac_lives_in_last_eight_bytes() {
        let mut node = SitNode::new();
        node.hmac = 0x0102_0304_0506_0708;
        let line = node.to_line();
        assert_eq!(&line[56..], &0x0102_0304_0506_0708u64.to_le_bytes());
    }
}
