//! The plain Merkle Tree over user data (Fig. 2) — background baseline.
//!
//! The MT hashes user-data lines directly: its leaves are the data lines
//! themselves, so for the same data region it is 64× wider (and several
//! levels taller) than a BMT/SIT — the storage/propagation cost that
//! motivated Bonsai Merkle Trees (§II-D2). Kept here for the background
//! comparison and the quickstart example.

use crate::geometry::{NodeId, TreeGeometry};
use crate::node::BmtNode;
use scue_crypto::hmac::bmt_child_hmac;
use scue_crypto::siphash::WordHasher;
use scue_crypto::SecretKey;
use scue_nvm::{LineAddr, NvmStore};

/// The on-chip MT root digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MtRoot(pub u64);

/// Context for plain-MT operations.
///
/// Internally reuses the 8-ary geometry machinery with *data lines as
/// leaves*: geometry is built over a dummy data region of
/// `data_lines / 64` lines so that its "leaf" level has exactly
/// `data_lines` entries... more simply, we construct a geometry whose
/// leaf count equals the protected line count and address nodes after
/// the real data region.
#[derive(Debug, Clone)]
pub struct MtContext {
    /// Number of protected user-data lines (the MT leaf count).
    data_lines: u64,
    /// Geometry over the *node* levels; level 0 of this geometry is the
    /// first hash level (one node per 8 data lines).
    node_geometry: TreeGeometry,
    key: SecretKey,
}

impl MtContext {
    /// Creates an MT over `data_lines` user-data lines; hash nodes are
    /// laid out after `metadata_base` so they never collide with data.
    ///
    /// # Panics
    ///
    /// Panics if `data_lines` is zero.
    pub fn new(data_lines: u64, key: SecretKey) -> Self {
        assert!(data_lines > 0, "cannot protect an empty data region");
        // A geometry whose "data region" is our data lines and whose leaf
        // level has one node per 8 data lines: reuse for_data_lines but
        // with 8-line leaves by scaling: for_data_lines gives one leaf per
        // 64 lines, so feed it data_lines/8 "virtual" lines rounded up...
        // Simpler: build over data_lines directly; its leaf level (per-64)
        // becomes our level-1, and we add a per-8 level-0 ourselves.
        let node_geometry = TreeGeometry::for_data_lines(data_lines);
        Self {
            data_lines,
            node_geometry,
            key,
        }
    }

    /// Number of protected data lines.
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Total tree levels including the per-8 hash level and the root.
    pub fn total_levels(&self) -> u8 {
        // level-0 MAC-of-data groups (per 8 lines are folded per 64 into
        // node_geometry's leaves) + stored levels + root.
        self.node_geometry.total_levels() + 1
    }

    /// The MAC the tree stores for one data line: keyed hash of address
    /// and content.
    pub fn data_mac(&self, store: &NvmStore, addr: LineAddr) -> u64 {
        bmt_child_hmac(&self.key, addr.raw(), &store.read_line(addr))
    }

    /// Rebuilds the whole MT from data and returns the root digest. The
    /// per-64 "leaf" nodes hold a digest of their 64 lines' MACs; upper
    /// levels hash child node lines exactly like a BMT.
    pub fn rebuild_all(&self, store: &mut NvmStore) -> MtRoot {
        let geom = &self.node_geometry;
        // Level 0 nodes: one per 64 data lines, 8 slots of 8-line-group
        // digests.
        for leaf_idx in 0..geom.leaf_count() {
            let mut node = BmtNode::new();
            for slot in 0..8u64 {
                let base = leaf_idx * 64 + slot * 8;
                if base >= self.data_lines {
                    break;
                }
                let mut h = WordHasher::new(&self.key);
                h.write_u64(0x4D54_4C45_4146_3030); // domain "MTLEAF00"
                for line in base..(base + 8).min(self.data_lines) {
                    h.write_u64(self.data_mac(store, LineAddr::new(line)));
                }
                node.set_child_hmac(slot as usize, h.finish());
            }
            store.write_line(geom.node_addr(NodeId::new(0, leaf_idx)), node.to_line());
        }
        // Upper levels: hash child node lines.
        for level in 1..geom.stored_levels() {
            for node_idx in 0..geom.level_count(level) {
                let node_id = NodeId::new(level, node_idx);
                let mut node = BmtNode::new();
                for child in geom.children(node_id) {
                    let caddr = geom.node_addr(child);
                    node.set_child_hmac(
                        child.parent_slot(),
                        bmt_child_hmac(&self.key, caddr.raw(), &store.read_line(caddr)),
                    );
                }
                store.write_line(geom.node_addr(node_id), node.to_line());
            }
        }
        self.root_digest(store)
    }

    /// The current root digest over the top level.
    pub fn root_digest(&self, store: &NvmStore) -> MtRoot {
        let mut h = WordHasher::new(&self.key);
        h.write_u64(0x4D54_5F52_4F4F_5421); // domain "MT_ROOT!"
        for top in self.node_geometry.root_children() {
            let line = store.read_line(self.node_geometry.node_addr(top));
            for chunk in line.chunks_exact(8) {
                h.write_u64(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
        }
        MtRoot(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MtContext {
        MtContext::new(256, SecretKey::from_seed(3))
    }

    #[test]
    fn rebuild_is_deterministic() {
        let c = ctx();
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(0), [1u8; 64]);
        let r1 = c.rebuild_all(&mut store);
        let r2 = c.rebuild_all(&mut store);
        assert_eq!(r1, r2);
    }

    #[test]
    fn any_data_change_changes_root() {
        let c = ctx();
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(7), [1u8; 64]);
        let r1 = c.rebuild_all(&mut store);
        store.write_line(LineAddr::new(200), [2u8; 64]);
        let r2 = c.rebuild_all(&mut store);
        assert_ne!(r1, r2);
    }

    #[test]
    fn tamper_detected_by_root_comparison() {
        let c = ctx();
        let mut store = NvmStore::new();
        store.write_line(LineAddr::new(10), [3u8; 64]);
        let before = c.rebuild_all(&mut store);
        store.tamper_line(LineAddr::new(10), [4u8; 64]);
        let after = c.rebuild_all(&mut store);
        assert_ne!(
            before, after,
            "replayed/altered data yields a different root"
        );
    }

    #[test]
    fn mt_is_taller_than_equivalent_sit() {
        let sit_geom = TreeGeometry::for_data_lines(1 << 16);
        let mt = MtContext::new(1 << 16, SecretKey::from_seed(0));
        assert!(mt.total_levels() > sit_geom.total_levels());
    }
}
