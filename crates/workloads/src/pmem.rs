//! The persistent-memory region the data-structure workloads run on.
//!
//! [`PmRegion`] is a byte-addressable region backed by ordinary memory
//! that *records* the line-granular trace of everything done to it —
//! loads, stores, `clwb`s and fences — exactly the instrumentation a
//! PIN/gem5 trace of a PMDK-style program would yield. The data
//! structures in [`crate::generators`] are real implementations (their
//! unit tests check functional behaviour); the recorded traces are what
//! the simulator replays.

use crate::trace::{MemOp, Trace};
use scue_nvm::{LineAddr, LINE_BYTES};

/// A trace-recording persistent-memory region.
///
/// # Example
///
/// ```
/// use scue_workloads::pmem::PmRegion;
///
/// let mut pm = PmRegion::new("demo", 4096);
/// pm.write_u64(16, 0xABCD);
/// pm.persist(16, 8);
/// assert_eq!(pm.read_u64(16), 0xABCD);
/// let trace = pm.into_trace();
/// assert!(trace.len() >= 3); // store + clwb + fence
/// ```
#[derive(Debug, Clone)]
pub struct PmRegion {
    bytes: Vec<u8>,
    trace: Trace,
    /// Number of data lines in the region.
    lines: u64,
}

impl PmRegion {
    /// Allocates a zeroed region of `size_bytes` (rounded up to lines).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(name: impl Into<String>, size_bytes: usize) -> Self {
        assert!(size_bytes > 0, "region must be non-empty");
        let lines = size_bytes.div_ceil(LINE_BYTES) as u64;
        Self {
            bytes: vec![0; lines as usize * LINE_BYTES],
            trace: Trace::new(name),
            lines,
        }
    }

    /// Region capacity in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Region capacity in lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn line_of(&self, offset: usize) -> LineAddr {
        LineAddr::new((offset / LINE_BYTES) as u64)
    }

    /// Reads a u64 at byte `offset`, recording the load.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the region end.
    pub fn read_u64(&mut self, offset: usize) -> u64 {
        let value = u64::from_le_bytes(
            self.bytes[offset..offset + 8]
                .try_into()
                .expect("8-byte slice"),
        );
        self.trace.ops.push(MemOp::Load(self.line_of(offset)));
        value
    }

    /// Writes a u64 at byte `offset`, recording the store.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the region end.
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.bytes[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
        self.trace.ops.push(MemOp::Store(self.line_of(offset)));
    }

    /// `clwb`s every line in `[offset, offset + len)` and fences —
    /// the `persist()` primitive of persistent-memory libraries.
    pub fn persist(&mut self, offset: usize, len: usize) {
        let first = offset / LINE_BYTES;
        let last = (offset + len.max(1) - 1) / LINE_BYTES;
        for line in first..=last {
            self.trace
                .ops
                .push(MemOp::Persist(LineAddr::new(line as u64)));
        }
        self.trace.ops.push(MemOp::Fence);
    }

    /// Records `n` instructions of computation between memory accesses.
    pub fn compute(&mut self, n: u32) {
        self.trace.ops.push(MemOp::Compute(n));
    }

    /// Finishes recording and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Operations recorded so far.
    pub fn recorded_ops(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut pm = PmRegion::new("t", 1024);
        pm.write_u64(128, 42);
        assert_eq!(pm.read_u64(128), 42);
        assert_eq!(pm.read_u64(136), 0);
    }

    #[test]
    fn trace_records_line_granular_ops() {
        let mut pm = PmRegion::new("t", 1024);
        pm.write_u64(0, 1);
        pm.write_u64(8, 2); // same line
        pm.read_u64(64); // next line
        let t = pm.into_trace();
        assert_eq!(
            t.ops,
            vec![
                MemOp::Store(LineAddr::new(0)),
                MemOp::Store(LineAddr::new(0)),
                MemOp::Load(LineAddr::new(1)),
            ]
        );
    }

    #[test]
    fn persist_covers_spanned_lines() {
        let mut pm = PmRegion::new("t", 1024);
        pm.persist(60, 10); // spans lines 0 and 1
        let t = pm.into_trace();
        assert_eq!(
            t.ops,
            vec![
                MemOp::Persist(LineAddr::new(0)),
                MemOp::Persist(LineAddr::new(1)),
                MemOp::Fence,
            ]
        );
    }

    #[test]
    fn size_rounds_to_lines() {
        let pm = PmRegion::new("t", 100);
        assert_eq!(pm.size(), 128);
        assert_eq!(pm.lines(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut pm = PmRegion::new("t", 64);
        let _ = pm.read_u64(60); // crosses the end
    }
}
