//! The five persistent workloads (§V-A): real data structures on
//! [`PmRegion`], persist-ordered like their PMDK counterparts.
//!
//! Each structure is functionally complete (insert/lookup behaviour is
//! unit-tested) and issues the load/store/`clwb`/fence pattern its real
//! implementation would — that pattern, not the computation, is what the
//! memory system sees.

use crate::pmem::PmRegion;
use crate::trace::Trace;
use scue_util::rng::Rng;

/// Sentinel null pointer inside the region.
const NIL: u64 = u64::MAX;

// ----------------------------------------------------------------------
// array
// ----------------------------------------------------------------------

/// A persistent array of u64 slots with persisted in-place updates.
#[derive(Debug)]
pub struct PmArray {
    pm: PmRegion,
    slots: usize,
}

impl PmArray {
    /// Allocates an array with `slots` entries.
    pub fn new(slots: usize) -> Self {
        Self {
            pm: PmRegion::new("array", slots * 8),
            slots,
        }
    }

    /// Atomically (persist-ordered) updates slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update(&mut self, index: usize, value: u64) {
        assert!(index < self.slots, "index {index} out of range");
        let offset = index * 8;
        let old = self.pm.read_u64(offset);
        self.pm.compute(4);
        self.pm.write_u64(offset, old.wrapping_add(value));
        self.pm.persist(offset, 8);
    }

    /// Reads slot `index`.
    pub fn get(&mut self, index: usize) -> u64 {
        self.pm.read_u64(index * 8)
    }

    /// Finishes and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.pm.into_trace()
    }
}

/// The `array` workload: random persisted updates over a 16 MB array.
pub fn array(scale: usize, seed: u64) -> Trace {
    let mut rng = Rng::from_seed(seed);
    let slots = 2 * 1024 * 1024; // 16 MB
    let mut arr = PmArray::new(slots);
    for _ in 0..scale {
        let index = rng.gen_range(0..slots);
        arr.update(index, rng.next_u64());
    }
    arr.into_trace()
}

// ----------------------------------------------------------------------
// queue
// ----------------------------------------------------------------------

/// A persistent ring-buffer queue: header line with head/tail, then
/// 8-byte slots.
#[derive(Debug)]
pub struct PmQueue {
    pm: PmRegion,
    capacity: usize,
}

const Q_HEAD: usize = 0;
const Q_TAIL: usize = 8;
const Q_SLOTS: usize = 64; // slots start after the header line

impl PmQueue {
    /// Allocates a queue with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            pm: PmRegion::new("queue", Q_SLOTS + capacity * 8),
            capacity,
        }
    }

    fn len_internal(head: u64, tail: u64) -> u64 {
        tail.wrapping_sub(head)
    }

    /// Enqueues `value`; returns false when full.
    pub fn enqueue(&mut self, value: u64) -> bool {
        let head = self.pm.read_u64(Q_HEAD);
        let tail = self.pm.read_u64(Q_TAIL);
        if Self::len_internal(head, tail) as usize >= self.capacity {
            return false;
        }
        let slot = Q_SLOTS + (tail as usize % self.capacity) * 8;
        self.pm.write_u64(slot, value);
        self.pm.persist(slot, 8); // data before tail: persist ordering
        self.pm.write_u64(Q_TAIL, tail + 1);
        self.pm.persist(Q_TAIL, 8);
        true
    }

    /// Dequeues the oldest value, or `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        let head = self.pm.read_u64(Q_HEAD);
        let tail = self.pm.read_u64(Q_TAIL);
        if head == tail {
            return None;
        }
        let slot = Q_SLOTS + (head as usize % self.capacity) * 8;
        let value = self.pm.read_u64(slot);
        self.pm.write_u64(Q_HEAD, head + 1);
        self.pm.persist(Q_HEAD, 8);
        Some(value)
    }

    /// Current length.
    pub fn len(&mut self) -> usize {
        let head = self.pm.read_u64(Q_HEAD);
        let tail = self.pm.read_u64(Q_TAIL);
        Self::len_internal(head, tail) as usize
    }

    /// Whether the queue is empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Finishes and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.pm.into_trace()
    }
}

/// The `queue` workload: mixed enqueue/dequeue bursts.
pub fn queue(scale: usize, seed: u64) -> Trace {
    let mut rng = Rng::from_seed(seed);
    let mut q = PmQueue::new(64 * 1024);
    for _ in 0..scale {
        if rng.gen_bool(0.55) {
            q.enqueue(rng.next_u64());
        } else {
            q.dequeue();
        }
    }
    q.into_trace()
}

// ----------------------------------------------------------------------
// hash
// ----------------------------------------------------------------------

/// A persistent open-addressing (linear probing) hash table of
/// 16-byte (key, value) entries. Key 0 means empty; callers use keys >= 1.
#[derive(Debug)]
pub struct PmHash {
    pm: PmRegion,
    buckets: usize,
}

const H_COUNT: usize = 0;
const H_TABLE: usize = 64;

impl PmHash {
    /// Allocates a table with `buckets` entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets.is_power_of_two(), "buckets must be a power of two");
        Self {
            pm: PmRegion::new("hash", H_TABLE + buckets * 16),
            buckets,
        }
    }

    fn slot_offset(&self, index: usize) -> usize {
        H_TABLE + (index & (self.buckets - 1)) * 16
    }

    fn hash_key(key: u64) -> usize {
        // Fibonacci hashing: good spread, no allocation.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13) as usize
    }

    /// Inserts (or updates) `key -> value`; returns false when full.
    ///
    /// # Panics
    ///
    /// Panics if `key` is zero (reserved for empty slots).
    pub fn insert(&mut self, key: u64, value: u64) -> bool {
        assert_ne!(key, 0, "key 0 is the empty marker");
        let start = Self::hash_key(key);
        for probe in 0..self.buckets {
            let offset = self.slot_offset(start + probe);
            let existing = self.pm.read_u64(offset);
            if existing == 0 || existing == key {
                let fresh = existing == 0;
                self.pm.write_u64(offset, key);
                self.pm.write_u64(offset + 8, value);
                self.pm.persist(offset, 16);
                if fresh {
                    let count = self.pm.read_u64(H_COUNT);
                    self.pm.write_u64(H_COUNT, count + 1);
                    self.pm.persist(H_COUNT, 8);
                }
                return true;
            }
        }
        false
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let start = Self::hash_key(key);
        for probe in 0..self.buckets {
            let offset = self.slot_offset(start + probe);
            let existing = self.pm.read_u64(offset);
            if existing == key {
                return Some(self.pm.read_u64(offset + 8));
            }
            if existing == 0 {
                return None;
            }
        }
        None
    }

    /// Number of live entries.
    pub fn len(&mut self) -> usize {
        self.pm.read_u64(H_COUNT) as usize
    }

    /// Whether the table is empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Finishes and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.pm.into_trace()
    }
}

/// The `hash` workload: inserts and lookups, 2:1, over a 32 MB table.
pub fn hash(scale: usize, seed: u64) -> Trace {
    let mut rng = Rng::from_seed(seed);
    let mut table = PmHash::new(2 * 1024 * 1024);
    let mut inserted: Vec<u64> = Vec::new();
    for _ in 0..scale {
        if inserted.is_empty() || rng.gen_bool(0.66) {
            let key = rng.gen_range(1..u64::MAX);
            table.insert(key, key ^ 0xFF);
            inserted.push(key);
        } else {
            let key = inserted[rng.gen_range(0..inserted.len())];
            table.get(key);
        }
    }
    table.into_trace()
}

// ----------------------------------------------------------------------
// btree (B+tree, order 8)
// ----------------------------------------------------------------------

/// A persistent B+tree with 7 keys per node and leaf-level values.
///
/// Node layout (128 B = 2 lines): meta (count, leaf flag) @0, keys @8
/// (7 × 8 B), slots @64 (children for internal nodes, values for
/// leaves; `slots[7]` of a leaf is the next-leaf pointer).
#[derive(Debug)]
pub struct PmBtree {
    pm: PmRegion,
    root: u64,
    next_free: u64,
    capacity: u64,
}

const BT_NODE_BYTES: u64 = 128;
const BT_MAX_KEYS: usize = 7;

impl PmBtree {
    /// Allocates a tree with room for `max_nodes` nodes.
    pub fn new(max_nodes: u64) -> Self {
        let mut pm = PmRegion::new("btree", (max_nodes * BT_NODE_BYTES) as usize);
        // Root starts as an empty leaf at offset 0.
        pm.write_u64(0, Self::meta(0, true));
        pm.write_u64(64 + 56, NIL); // next-leaf pointer
        pm.persist(0, BT_NODE_BYTES as usize);
        Self {
            pm,
            root: 0,
            next_free: BT_NODE_BYTES,
            capacity: max_nodes * BT_NODE_BYTES,
        }
    }

    fn meta(count: u64, leaf: bool) -> u64 {
        count | ((leaf as u64) << 32)
    }

    fn read_meta(&mut self, node: u64) -> (usize, bool) {
        let m = self.pm.read_u64(node as usize);
        ((m & 0xFFFF_FFFF) as usize, (m >> 32) & 1 == 1)
    }

    fn write_meta(&mut self, node: u64, count: usize, leaf: bool) {
        self.pm
            .write_u64(node as usize, Self::meta(count as u64, leaf));
    }

    fn key_at(&mut self, node: u64, i: usize) -> u64 {
        self.pm.read_u64(node as usize + 8 + i * 8)
    }

    fn set_key(&mut self, node: u64, i: usize, key: u64) {
        self.pm.write_u64(node as usize + 8 + i * 8, key);
    }

    fn slot_at(&mut self, node: u64, i: usize) -> u64 {
        self.pm.read_u64(node as usize + 64 + i * 8)
    }

    fn set_slot(&mut self, node: u64, i: usize, value: u64) {
        self.pm.write_u64(node as usize + 64 + i * 8, value);
    }

    fn alloc_node(&mut self, leaf: bool) -> u64 {
        let node = self.next_free;
        assert!(
            node + BT_NODE_BYTES <= self.capacity,
            "btree region exhausted"
        );
        self.next_free += BT_NODE_BYTES;
        self.write_meta(node, 0, leaf);
        if leaf {
            self.set_slot(node, 7, NIL);
        }
        node
    }

    fn persist_node(&mut self, node: u64) {
        self.pm.persist(node as usize, BT_NODE_BYTES as usize);
    }

    /// Inserts `key -> value` (keys must not be `u64::MAX`).
    pub fn insert(&mut self, key: u64, value: u64) {
        assert_ne!(key, NIL, "NIL key is reserved");
        // Split-on-the-way-down insertion.
        let (count, _) = self.read_meta(self.root);
        if count == BT_MAX_KEYS {
            let old_root = self.root;
            let new_root = self.alloc_node(false);
            self.set_slot(new_root, 0, old_root);
            self.split_child(new_root, 0);
            self.persist_node(new_root);
            self.root = new_root;
        }
        self.insert_nonfull(self.root, key, value);
    }

    fn split_child(&mut self, parent: u64, child_idx: usize) {
        let child = self.slot_at(parent, child_idx);
        let (ccount, cleaf) = self.read_meta(child);
        debug_assert_eq!(ccount, BT_MAX_KEYS);
        let sibling = self.alloc_node(cleaf);
        let mid = BT_MAX_KEYS / 2; // 3
        let (keep, move_count, sep_key) = if cleaf {
            // Leaves keep the separator (B+tree): left keeps mid+1 keys.
            (
                mid + 1,
                BT_MAX_KEYS - (mid + 1),
                self.key_at(child, mid + 1),
            )
        } else {
            (mid, BT_MAX_KEYS - mid - 1, self.key_at(child, mid))
        };
        // Move the upper keys/slots to the sibling.
        let src_base = if cleaf { keep } else { mid + 1 };
        for i in 0..move_count {
            let k = self.key_at(child, src_base + i);
            self.set_key(sibling, i, k);
            let v = self.slot_at(child, src_base + i);
            self.set_slot(sibling, i, v);
        }
        if !cleaf {
            let v = self.slot_at(child, BT_MAX_KEYS);
            self.set_slot(sibling, move_count, v);
        } else {
            // Link the leaf chain.
            let next = self.slot_at(child, 7);
            self.set_slot(sibling, 7, next);
            self.set_slot(child, 7, sibling);
        }
        self.write_meta(sibling, move_count, cleaf);
        self.write_meta(child, keep, cleaf);
        // Shift the parent's keys/slots right and insert the separator.
        let (pcount, _) = self.read_meta(parent);
        for i in (child_idx..pcount).rev() {
            let k = self.key_at(parent, i);
            self.set_key(parent, i + 1, k);
        }
        for i in (child_idx + 1..=pcount).rev() {
            let v = self.slot_at(parent, i);
            self.set_slot(parent, i + 1, v);
        }
        self.set_key(parent, child_idx, sep_key);
        self.set_slot(parent, child_idx + 1, sibling);
        self.write_meta(parent, pcount + 1, false);
        self.persist_node(sibling);
        self.persist_node(child);
        self.persist_node(parent);
    }

    fn insert_nonfull(&mut self, node: u64, key: u64, value: u64) {
        let (count, leaf) = self.read_meta(node);
        if leaf {
            // Update in place if the key exists.
            for i in 0..count {
                if self.key_at(node, i) == key {
                    self.set_slot(node, i, value);
                    self.persist_node(node);
                    return;
                }
            }
            let mut i = count;
            while i > 0 && self.key_at(node, i - 1) > key {
                let k = self.key_at(node, i - 1);
                self.set_key(node, i, k);
                let v = self.slot_at(node, i - 1);
                self.set_slot(node, i, v);
                i -= 1;
            }
            self.set_key(node, i, key);
            self.set_slot(node, i, value);
            self.write_meta(node, count + 1, true);
            self.persist_node(node);
        } else {
            let mut i = 0;
            while i < count && key >= self.key_at(node, i) {
                i += 1;
            }
            let child = self.slot_at(node, i);
            let (ccount, _) = self.read_meta(child);
            if ccount == BT_MAX_KEYS {
                self.split_child(node, i);
                if key >= self.key_at(node, i) {
                    i += 1;
                }
            }
            let child = self.slot_at(node, i);
            self.insert_nonfull(child, key, value);
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let mut node = self.root;
        loop {
            let (count, leaf) = self.read_meta(node);
            if leaf {
                for i in 0..count {
                    if self.key_at(node, i) == key {
                        return Some(self.slot_at(node, i));
                    }
                }
                return None;
            }
            let mut i = 0;
            while i < count && key >= self.key_at(node, i) {
                i += 1;
            }
            node = self.slot_at(node, i);
        }
    }

    /// All keys in order via the leaf chain (test support).
    pub fn keys_in_order(&mut self) -> Vec<u64> {
        // Descend to the leftmost leaf.
        let mut node = self.root;
        loop {
            let (_, leaf) = self.read_meta(node);
            if leaf {
                break;
            }
            node = self.slot_at(node, 0);
        }
        let mut keys = Vec::new();
        loop {
            let (count, _) = self.read_meta(node);
            for i in 0..count {
                keys.push(self.key_at(node, i));
            }
            let next = self.slot_at(node, 7);
            if next == NIL {
                break;
            }
            node = next;
        }
        keys
    }

    /// Finishes and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.pm.into_trace()
    }
}

/// The `btree` workload: random inserts with occasional lookups.
pub fn btree(scale: usize, seed: u64) -> Trace {
    let mut rng = Rng::from_seed(seed);
    let mut tree = PmBtree::new(4 * scale as u64 + 64);
    let mut inserted: Vec<u64> = Vec::new();
    for _ in 0..scale {
        if inserted.is_empty() || rng.gen_bool(0.75) {
            let key = rng.gen_range(1..NIL);
            tree.insert(key, key ^ 0xAA);
            inserted.push(key);
        } else {
            let key = inserted[rng.gen_range(0..inserted.len())];
            tree.get(key);
        }
    }
    tree.into_trace()
}

// ----------------------------------------------------------------------
// rbtree
// ----------------------------------------------------------------------

/// A persistent red-black tree with one 64 B line per node.
///
/// Node layout: key @0, value @8, left @16, right @24, parent @32,
/// color @40 (0 = black, 1 = red).
#[derive(Debug)]
pub struct PmRbtree {
    pm: PmRegion,
    root: u64,
    next_free: u64,
    capacity: u64,
}

const RB_NODE_BYTES: u64 = 64;
const RED: u64 = 1;
const BLACK: u64 = 0;

impl PmRbtree {
    /// Allocates a tree with room for `max_nodes` nodes.
    pub fn new(max_nodes: u64) -> Self {
        Self {
            pm: PmRegion::new("rbtree", (max_nodes * RB_NODE_BYTES) as usize),
            root: NIL,
            next_free: 0,
            capacity: max_nodes * RB_NODE_BYTES,
        }
    }

    fn field(&mut self, node: u64, off: usize) -> u64 {
        self.pm.read_u64(node as usize + off)
    }

    fn set_field(&mut self, node: u64, off: usize, value: u64) {
        self.pm.write_u64(node as usize + off, value);
    }

    fn key(&mut self, n: u64) -> u64 {
        self.field(n, 0)
    }
    fn left(&mut self, n: u64) -> u64 {
        self.field(n, 16)
    }
    fn right(&mut self, n: u64) -> u64 {
        self.field(n, 24)
    }
    fn parent(&mut self, n: u64) -> u64 {
        self.field(n, 32)
    }
    fn color(&mut self, n: u64) -> u64 {
        if n == NIL {
            BLACK
        } else {
            self.field(n, 40)
        }
    }

    fn persist_node(&mut self, node: u64) {
        if node != NIL {
            self.pm.persist(node as usize, RB_NODE_BYTES as usize);
        }
    }

    fn rotate_left(&mut self, x: u64) {
        let y = self.right(x);
        let yl = self.left(y);
        self.set_field(x, 24, yl);
        if yl != NIL {
            self.set_field(yl, 32, x);
        }
        let xp = self.parent(x);
        self.set_field(y, 32, xp);
        if xp == NIL {
            self.root = y;
        } else if self.left(xp) == x {
            self.set_field(xp, 16, y);
        } else {
            self.set_field(xp, 24, y);
        }
        self.set_field(y, 16, x);
        self.set_field(x, 32, y);
        self.persist_node(x);
        self.persist_node(y);
        self.persist_node(xp);
    }

    fn rotate_right(&mut self, x: u64) {
        let y = self.left(x);
        let yr = self.right(y);
        self.set_field(x, 16, yr);
        if yr != NIL {
            self.set_field(yr, 32, x);
        }
        let xp = self.parent(x);
        self.set_field(y, 32, xp);
        if xp == NIL {
            self.root = y;
        } else if self.right(xp) == x {
            self.set_field(xp, 24, y);
        } else {
            self.set_field(xp, 16, y);
        }
        self.set_field(y, 24, x);
        self.set_field(x, 32, y);
        self.persist_node(x);
        self.persist_node(y);
        self.persist_node(xp);
    }

    /// Inserts `key -> value` (key `u64::MAX` reserved).
    pub fn insert(&mut self, key: u64, value: u64) {
        assert_ne!(key, NIL, "NIL key is reserved");
        // Standard BST descent.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            let ck = self.key(cur);
            if key == ck {
                self.set_field(cur, 8, value);
                self.persist_node(cur);
                return;
            }
            cur = if key < ck {
                self.left(cur)
            } else {
                self.right(cur)
            };
        }
        let node = self.next_free;
        assert!(
            node + RB_NODE_BYTES <= self.capacity,
            "rbtree region exhausted"
        );
        self.next_free += RB_NODE_BYTES;
        self.set_field(node, 0, key);
        self.set_field(node, 8, value);
        self.set_field(node, 16, NIL);
        self.set_field(node, 24, NIL);
        self.set_field(node, 32, parent);
        self.set_field(node, 40, RED);
        self.persist_node(node);
        if parent == NIL {
            self.root = node;
        } else if key < self.key(parent) {
            self.set_field(parent, 16, node);
            self.persist_node(parent);
        } else {
            self.set_field(parent, 24, node);
            self.persist_node(parent);
        }
        self.fixup(node);
    }

    fn fixup(&mut self, mut z: u64) {
        loop {
            let zp0 = self.parent(z);
            if zp0 == NIL || self.color(zp0) != RED {
                break;
            }
            let zp = self.parent(z);
            let zpp = self.parent(zp);
            if zpp == NIL {
                break;
            }
            if zp == self.left(zpp) {
                let uncle = self.right(zpp);
                if self.color(uncle) == RED {
                    self.set_field(zp, 40, BLACK);
                    self.set_field(uncle, 40, BLACK);
                    self.set_field(zpp, 40, RED);
                    self.persist_node(zp);
                    self.persist_node(uncle);
                    self.persist_node(zpp);
                    z = zpp;
                } else {
                    if z == self.right(zp) {
                        z = zp;
                        self.rotate_left(z);
                    }
                    let zp = self.parent(z);
                    let zpp = self.parent(zp);
                    self.set_field(zp, 40, BLACK);
                    self.set_field(zpp, 40, RED);
                    self.persist_node(zp);
                    self.persist_node(zpp);
                    self.rotate_right(zpp);
                }
            } else {
                let uncle = self.left(zpp);
                if self.color(uncle) == RED {
                    self.set_field(zp, 40, BLACK);
                    self.set_field(uncle, 40, BLACK);
                    self.set_field(zpp, 40, RED);
                    self.persist_node(zp);
                    self.persist_node(uncle);
                    self.persist_node(zpp);
                    z = zpp;
                } else {
                    if z == self.left(zp) {
                        z = zp;
                        self.rotate_right(z);
                    }
                    let zp = self.parent(z);
                    let zpp = self.parent(zp);
                    self.set_field(zp, 40, BLACK);
                    self.set_field(zpp, 40, RED);
                    self.persist_node(zp);
                    self.persist_node(zpp);
                    self.rotate_left(zpp);
                }
            }
        }
        let root = self.root;
        if self.color(root) == RED {
            self.set_field(root, 40, BLACK);
            self.persist_node(root);
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let mut cur = self.root;
        while cur != NIL {
            let ck = self.key(cur);
            if key == ck {
                return Some(self.field(cur, 8));
            }
            cur = if key < ck {
                self.left(cur)
            } else {
                self.right(cur)
            };
        }
        None
    }

    /// In-order keys (test support).
    pub fn keys_in_order(&mut self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.left(cur);
            }
            let node = stack.pop().expect("non-empty");
            keys.push(self.key(node));
            cur = self.right(node);
        }
        keys
    }

    /// Black-height consistency check (test support): returns the black
    /// height if every path agrees, `None` otherwise.
    pub fn black_height(&mut self) -> Option<u32> {
        fn walk(t: &mut PmRbtree, node: u64) -> Option<u32> {
            if node == NIL {
                return Some(1);
            }
            let left = t.left(node);
            let l = walk(t, left)?;
            let right = t.right(node);
            let r = walk(t, right)?;
            if l != r {
                return None;
            }
            // Red nodes must have black children.
            if t.color(node) == RED {
                let lc = t.left(node);
                let rc = t.right(node);
                if t.color(lc) == RED || t.color(rc) == RED {
                    return None;
                }
            }
            Some(l + if t.color(node) == BLACK { 1 } else { 0 })
        }
        let root = self.root;
        walk(self, root)
    }

    /// Finishes and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.pm.into_trace()
    }
}

/// The `rbtree` workload: random inserts with occasional lookups.
pub fn rbtree(scale: usize, seed: u64) -> Trace {
    let mut rng = Rng::from_seed(seed);
    let mut tree = PmRbtree::new(scale as u64 + 64);
    let mut inserted: Vec<u64> = Vec::new();
    for _ in 0..scale {
        if inserted.is_empty() || rng.gen_bool(0.7) {
            let key = rng.gen_range(1..NIL);
            tree.insert(key, key ^ 0x55);
            inserted.push(key);
        } else {
            let key = inserted[rng.gen_range(0..inserted.len())];
            tree.get(key);
        }
    }
    tree.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_updates_accumulate() {
        let mut arr = PmArray::new(16);
        arr.update(3, 10);
        arr.update(3, 5);
        assert_eq!(arr.get(3), 15);
        assert_eq!(arr.get(4), 0);
    }

    #[test]
    fn queue_is_fifo() {
        let mut q = PmQueue::new(4);
        assert!(q.is_empty());
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn queue_rejects_when_full() {
        let mut q = PmQueue::new(2);
        assert!(q.enqueue(1));
        assert!(q.enqueue(2));
        assert!(!q.enqueue(3));
        q.dequeue();
        assert!(q.enqueue(3));
    }

    #[test]
    fn hash_insert_get() {
        let mut h = PmHash::new(64);
        for key in 1..=40u64 {
            assert!(h.insert(key, key * 2));
        }
        for key in 1..=40u64 {
            assert_eq!(h.get(key), Some(key * 2), "key {key}");
        }
        assert_eq!(h.get(99), None);
        assert_eq!(h.len(), 40);
    }

    #[test]
    fn hash_update_does_not_grow() {
        let mut h = PmHash::new(16);
        h.insert(5, 1);
        h.insert(5, 2);
        assert_eq!(h.get(5), Some(2));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn btree_sorted_inserts() {
        let mut t = PmBtree::new(256);
        for key in 1..=100u64 {
            t.insert(key, key + 1000);
        }
        for key in 1..=100u64 {
            assert_eq!(t.get(key), Some(key + 1000), "key {key}");
        }
        assert_eq!(t.get(0), None);
        assert_eq!(t.keys_in_order(), (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn btree_random_inserts_stay_ordered() {
        let mut rng = Rng::from_seed(3);
        let mut t = PmBtree::new(2048);
        let mut keys: Vec<u64> = (0..400).map(|_| rng.gen_range(1..1_000_000)).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(t.keys_in_order(), keys);
        for &k in &keys {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn btree_updates_in_place() {
        let mut t = PmBtree::new(64);
        t.insert(7, 1);
        t.insert(7, 2);
        assert_eq!(t.get(7), Some(2));
        assert_eq!(t.keys_in_order(), vec![7]);
    }

    #[test]
    fn rbtree_sorted_and_balanced() {
        let mut t = PmRbtree::new(1024);
        for key in (1..=300u64).rev() {
            t.insert(key, key);
        }
        assert_eq!(t.keys_in_order(), (1..=300).collect::<Vec<_>>());
        assert!(t.black_height().is_some(), "red-black invariants violated");
        for key in 1..=300u64 {
            assert_eq!(t.get(key), Some(key));
        }
    }

    #[test]
    fn rbtree_random_inserts() {
        let mut rng = Rng::from_seed(5);
        let mut t = PmRbtree::new(2048);
        let mut keys: Vec<u64> = (0..500).map(|_| rng.gen_range(1..1_000_000)).collect();
        for &k in &keys {
            t.insert(k, k ^ 1);
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(t.keys_in_order(), keys);
        assert!(t.black_height().is_some());
    }

    #[test]
    fn traces_contain_persist_ordering() {
        let t = queue(100, 1);
        let stats = t.stats();
        assert!(stats.persists >= stats.fences);
        assert!(stats.fences > 0);
    }
}
