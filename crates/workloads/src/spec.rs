//! Synthetic SPEC CPU2006 stand-ins (§V-A).
//!
//! The paper runs 8 SPEC2006 applications (the set used by PLP and BMF)
//! for 5 B instructions under gem5 SE mode. We cannot ship SPEC inputs or
//! gem5 checkpoints, so each application is replaced by a generator
//! reproducing the memory-system-visible characteristics that drive the
//! normalised overheads the figures report:
//!
//! * **footprint** — how much of the 16 GB is touched (metadata-cache
//!   pressure and tree-level reuse);
//! * **write fraction** — how many stores reach the secure write path;
//! * **locality** — sequential streams vs. strided sweeps vs. uniform
//!   pointer chasing (row-buffer and cache hit rates);
//! * **compute density** — instructions between memory ops, tuned so the
//!   overall traces carry the paper's ~50 % memory instructions.
//!
//! Parameters are set per app from their well-documented behaviour
//! (write-heavy streaming lbm, pointer-chasing mcf, etc.); see the table
//! in [`profile`].

use crate::trace::{MemOp, Trace};
use crate::Workload;
use scue_nvm::LineAddr;
use scue_util::rng::Rng;

/// Access-pattern flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Long unit-stride streams (lbm, libquantum, bwaves).
    Sequential,
    /// Fixed-stride sweeps over a lattice (milc).
    Strided(u64),
    /// Uniform random over the footprint (mcf pointer chasing).
    Random,
    /// Hot/cold: 90 % of accesses in a small hot set (omnetpp, gcc).
    HotCold {
        /// Hot-set size in lines.
        hot_lines: u64,
        /// Probability of hitting the hot set, in percent.
        hot_pct: u8,
    },
}

/// Memory-behaviour profile of one SPEC-like app.
#[derive(Debug, Clone, Copy)]
pub struct SpecProfile {
    /// Footprint in 64 B lines.
    pub footprint_lines: u64,
    /// Stores per 100 memory operations.
    pub write_pct: u8,
    /// Access pattern.
    pub locality: Locality,
    /// Compute instructions per memory operation (≈1 keeps the ~50 %
    /// memory-instruction mix the paper quotes).
    pub compute_per_mem: u32,
}

/// The per-application profiles.
pub fn profile(app: Workload) -> SpecProfile {
    match app {
        // lbm: fluid-dynamics stencil, streams through a large grid,
        // writes nearly half its accesses.
        Workload::Lbm => SpecProfile {
            footprint_lines: 512 * 1024,
            write_pct: 45,
            locality: Locality::Sequential,
            compute_per_mem: 1,
        },
        // mcf: minimum-cost flow, pointer chasing over a big graph —
        // read-dominated, the worst locality of the suite, but still with
        // a hot arc/node core (real mcf misses a few percent of accesses,
        // not all of them).
        Workload::Mcf => SpecProfile {
            footprint_lines: 1024 * 1024,
            write_pct: 20,
            locality: Locality::HotCold {
                hot_lines: 32 * 1024,
                hot_pct: 75,
            },
            compute_per_mem: 1,
        },
        // libquantum: streaming over a qubit register with regular
        // read-modify-writes.
        Workload::Libquantum => SpecProfile {
            footprint_lines: 256 * 1024,
            write_pct: 30,
            locality: Locality::Sequential,
            compute_per_mem: 1,
        },
        // omnetpp: discrete-event simulation, small hot event queue.
        Workload::Omnetpp => SpecProfile {
            footprint_lines: 256 * 1024,
            write_pct: 35,
            locality: Locality::HotCold {
                hot_lines: 8 * 1024,
                hot_pct: 90,
            },
            compute_per_mem: 1,
        },
        // milc: QCD lattice sweeps with a large stride.
        Workload::Milc => SpecProfile {
            footprint_lines: 512 * 1024,
            write_pct: 30,
            locality: Locality::Strided(17),
            compute_per_mem: 1,
        },
        // soplex: simplex LP over sparse matrices; mixed random reads,
        // few writes.
        Workload::Soplex => SpecProfile {
            footprint_lines: 512 * 1024,
            write_pct: 15,
            locality: Locality::HotCold {
                hot_lines: 64 * 1024,
                hot_pct: 60,
            },
            compute_per_mem: 1,
        },
        // gcc: compiler, irregular with moderate locality, mixed.
        Workload::Gcc => SpecProfile {
            footprint_lines: 384 * 1024,
            write_pct: 30,
            locality: Locality::HotCold {
                hot_lines: 32 * 1024,
                hot_pct: 80,
            },
            compute_per_mem: 1,
        },
        // bwaves: blast-wave CFD, dense sequential loops, read-mostly.
        Workload::Bwaves => SpecProfile {
            footprint_lines: 768 * 1024,
            write_pct: 18,
            locality: Locality::Sequential,
            compute_per_mem: 1,
        },
        other => panic!("{other} is not a SPEC-like workload"),
    }
}

/// Generates `scale` memory operations for a SPEC-like app.
///
/// # Panics
///
/// Panics if `app` is one of the persistent workloads.
pub fn generate(app: Workload, scale: usize, seed: u64) -> Trace {
    let p = profile(app);
    let mut rng = Rng::from_seed(seed ^ (app as u64).wrapping_mul(0x9E37_79B9));
    let mut trace = Trace::new(app.name());
    let mut cursor: u64 = rng.gen_range(0..p.footprint_lines);
    for _ in 0..scale {
        let line = match p.locality {
            Locality::Sequential => {
                cursor = (cursor + 1) % p.footprint_lines;
                cursor
            }
            Locality::Strided(stride) => {
                cursor = (cursor + stride) % p.footprint_lines;
                cursor
            }
            Locality::Random => rng.gen_range(0..p.footprint_lines),
            Locality::HotCold { hot_lines, hot_pct } => {
                if rng.gen_range(0..100) < hot_pct {
                    rng.gen_range(0..hot_lines)
                } else {
                    rng.gen_range(0..p.footprint_lines)
                }
            }
        };
        let addr = LineAddr::new(line);
        if rng.gen_range(0..100) < p.write_pct {
            trace.ops.push(MemOp::Store(addr));
        } else {
            trace.ops.push(MemOp::Load(addr));
        }
        if p.compute_per_mem > 0 {
            trace.ops.push(MemOp::Compute(p.compute_per_mem));
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_defined_for_all_spec_apps() {
        for app in Workload::SPEC {
            let p = profile(app);
            assert!(p.footprint_lines > 0);
            assert!(p.write_pct < 100);
        }
    }

    #[test]
    #[should_panic(expected = "not a SPEC-like workload")]
    fn persistent_workload_rejected() {
        let _ = profile(Workload::Array);
    }

    #[test]
    fn write_fraction_tracks_profile() {
        for app in Workload::SPEC {
            let p = profile(app);
            let t = generate(app, 20_000, 1);
            let wf = t.stats().write_fraction();
            let target = p.write_pct as f64 / 100.0;
            assert!(
                (wf - target).abs() < 0.02,
                "{app}: write fraction {wf} vs target {target}"
            );
        }
    }

    #[test]
    fn memory_fraction_is_about_half() {
        for app in Workload::SPEC {
            let t = generate(app, 10_000, 1);
            let mf = t.stats().memory_fraction();
            assert!((mf - 0.5).abs() < 0.05, "{app}: memory fraction {mf}");
        }
    }

    #[test]
    fn sequential_apps_touch_consecutive_lines() {
        let t = generate(Workload::Lbm, 1_000, 2);
        let mut prev: Option<u64> = None;
        let mut consecutive = 0;
        let mut total = 0;
        for op in &t.ops {
            if let MemOp::Load(a) | MemOp::Store(a) = op {
                if let Some(p) = prev {
                    total += 1;
                    if a.raw() == p + 1 || a.raw() == 0 {
                        consecutive += 1;
                    }
                }
                prev = Some(a.raw());
            }
        }
        assert!(consecutive as f64 / total as f64 > 0.99);
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let t = generate(Workload::Omnetpp, 20_000, 3);
        let (mut hot, mut total) = (0u64, 0u64);
        for op in &t.ops {
            if let MemOp::Load(a) | MemOp::Store(a) = op {
                total += 1;
                if a.raw() < 8 * 1024 {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.85, "hot fraction {frac}");
    }

    #[test]
    fn footprints_respect_profile_bounds() {
        for app in Workload::SPEC {
            let p = profile(app);
            let t = generate(app, 5_000, 4);
            for op in &t.ops {
                if let MemOp::Load(a) | MemOp::Store(a) = op {
                    assert!(a.raw() < p.footprint_lines, "{app}");
                }
            }
        }
    }
}
