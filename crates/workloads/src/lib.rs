//! Workloads for the SCUE evaluation (§V-A).
//!
//! Two families, matching the paper:
//!
//! * **Persistent workloads** — `array`, `btree`, `hash`, `queue`,
//!   `rbtree`: real data structures running on a persistent-memory region
//!   abstraction ([`pmem::PmRegion`]) that records every load, store,
//!   `clwb` and fence they issue. These are the write-intensive,
//!   persist-ordered traces where root crash consistency matters most.
//! * **SPEC CPU2006 stand-ins** — eight synthetic generators
//!   ([`spec`]) parameterised per application (footprint, write ratio,
//!   locality, compute density, ~50 % memory instructions). The paper's
//!   figures report overheads *normalised to Baseline*, which are driven
//!   by exactly these parameters rather than by the apps' computation —
//!   see DESIGN.md for the substitution argument.
//!
//! Every generator is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod pmem;
pub mod spec;
pub mod trace;

pub use trace::{MemOp, Trace, TraceStats};

/// The 13 evaluated workloads (5 persistent + 8 SPEC-like), in the
/// paper's figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Persistent array: random in-place updates, each persisted.
    Array,
    /// Persistent B-tree: ordered inserts with node splits.
    Btree,
    /// Persistent open-addressing hash table.
    Hash,
    /// Persistent ring-buffer queue.
    Queue,
    /// Persistent red-black tree.
    Rbtree,
    /// SPEC-like: lbm (streaming stencil, write-heavy).
    Lbm,
    /// SPEC-like: mcf (pointer chasing, read-heavy, poor locality).
    Mcf,
    /// SPEC-like: libquantum (sequential streaming).
    Libquantum,
    /// SPEC-like: omnetpp (event queue, small random working set).
    Omnetpp,
    /// SPEC-like: milc (strided lattice sweeps).
    Milc,
    /// SPEC-like: soplex (sparse matrix, mixed).
    Soplex,
    /// SPEC-like: gcc (irregular, moderate locality).
    Gcc,
    /// SPEC-like: bwaves (dense sequential loops, read-mostly).
    Bwaves,
}

impl Workload {
    /// All workloads, figure order: persistent first, then SPEC.
    pub const ALL: [Workload; 13] = [
        Workload::Array,
        Workload::Btree,
        Workload::Hash,
        Workload::Queue,
        Workload::Rbtree,
        Workload::Lbm,
        Workload::Mcf,
        Workload::Libquantum,
        Workload::Omnetpp,
        Workload::Milc,
        Workload::Soplex,
        Workload::Gcc,
        Workload::Bwaves,
    ];

    /// The five persistent workloads.
    pub const PERSISTENT: [Workload; 5] = [
        Workload::Array,
        Workload::Btree,
        Workload::Hash,
        Workload::Queue,
        Workload::Rbtree,
    ];

    /// The eight SPEC CPU2006 stand-ins.
    pub const SPEC: [Workload; 8] = [
        Workload::Lbm,
        Workload::Mcf,
        Workload::Libquantum,
        Workload::Omnetpp,
        Workload::Milc,
        Workload::Soplex,
        Workload::Gcc,
        Workload::Bwaves,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Array => "array",
            Workload::Btree => "btree",
            Workload::Hash => "hash",
            Workload::Queue => "queue",
            Workload::Rbtree => "rbtree",
            Workload::Lbm => "lbm",
            Workload::Mcf => "mcf",
            Workload::Libquantum => "libquantum",
            Workload::Omnetpp => "omnetpp",
            Workload::Milc => "milc",
            Workload::Soplex => "soplex",
            Workload::Gcc => "gcc",
            Workload::Bwaves => "bwaves",
        }
    }

    /// Generates this workload's trace with roughly `scale` operations.
    pub fn generate(self, scale: usize, seed: u64) -> Trace {
        match self {
            Workload::Array => generators::array(scale, seed),
            Workload::Btree => generators::btree(scale, seed),
            Workload::Hash => generators::hash(scale, seed),
            Workload::Queue => generators::queue(scale, seed),
            Workload::Rbtree => generators::rbtree(scale, seed),
            spec_app => spec::generate(spec_app, scale, seed),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_both_families() {
        assert_eq!(Workload::ALL.len(), 13);
        assert_eq!(Workload::PERSISTENT.len() + Workload::SPEC.len(), 13);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn generation_is_deterministic() {
        for w in Workload::ALL {
            let a = w.generate(500, 42);
            let b = w.generate(500, 42);
            assert_eq!(a.ops, b.ops, "{w}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::Mcf.generate(500, 1);
        let b = Workload::Mcf.generate(500, 2);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn every_workload_generates_stores() {
        for w in Workload::ALL {
            let t = w.generate(2_000, 7);
            let stats = t.stats();
            assert!(stats.stores > 0, "{w} must write");
            assert!(stats.loads > 0, "{w} must read");
        }
    }

    #[test]
    fn persistent_workloads_fence() {
        for w in Workload::PERSISTENT {
            let t = w.generate(2_000, 7);
            let stats = t.stats();
            assert!(stats.persists > 0, "{w} must clwb");
            assert!(stats.fences > 0, "{w} must fence");
        }
    }
}
