//! The persist-annotated memory-trace format.
//!
//! Traces are the interface between workloads and the simulator: a flat
//! sequence of line-granular memory operations plus persist-ordering
//! primitives (`clwb` + `sfence`), as emitted by persistent-memory code
//! on x86.

use scue_nvm::LineAddr;

/// One trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Read one line.
    Load(LineAddr),
    /// Write one line (content is synthesised deterministically by the
    /// runner from the address and store sequence number).
    Store(LineAddr),
    /// `clwb`: write the line back to the persistence domain without
    /// evicting it.
    Persist(LineAddr),
    /// `sfence`: block until every outstanding persist completes.
    Fence,
    /// `n` non-memory instructions (1 cycle each at IPC 1).
    Compute(u32),
}

/// Aggregate trace statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Load operations.
    pub loads: u64,
    /// Store operations.
    pub stores: u64,
    /// Persist (`clwb`) operations.
    pub persists: u64,
    /// Fences.
    pub fences: u64,
    /// Non-memory instructions.
    pub compute: u64,
    /// Distinct lines touched.
    pub footprint_lines: u64,
}

impl TraceStats {
    /// Fraction of instructions that access memory.
    pub fn memory_fraction(&self) -> f64 {
        let mem = self.loads + self.stores;
        let total = mem + self.compute;
        if total == 0 {
            0.0
        } else {
            mem as f64 / total as f64
        }
    }

    /// Stores as a fraction of memory operations.
    pub fn write_fraction(&self) -> f64 {
        let mem = self.loads + self.stores;
        if mem == 0 {
            0.0
        } else {
            self.stores as f64 / mem as f64
        }
    }
}

/// A named, replayable memory trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Workload name (figure label).
    pub name: String,
    /// The operations, in program order.
    pub ops: Vec<MemOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Computes aggregate statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut lines = std::collections::HashSet::new();
        for op in &self.ops {
            match op {
                MemOp::Load(a) => {
                    stats.loads += 1;
                    lines.insert(*a);
                }
                MemOp::Store(a) => {
                    stats.stores += 1;
                    lines.insert(*a);
                }
                MemOp::Persist(_) => stats.persists += 1,
                MemOp::Fence => stats.fences += 1,
                MemOp::Compute(n) => stats.compute += *n as u64,
            }
        }
        stats.footprint_lines = lines.len() as u64;
        stats
    }

    /// Stable 64-bit FNV-1a fingerprint of the operation stream.
    ///
    /// A pure function of the ops (the name is excluded), byte-exact
    /// across machines and builds. `tests/determinism.rs` pins the
    /// fingerprints of every workload at a fixed `(scale, seed)`, which
    /// is what makes the figures in `results/` reproducible: any change
    /// to the generators or the PRNG that alters a trace trips the pin.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = FNV_OFFSET;
        let mut eat = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        let mut eat_u64 = |tag: u8, value: u64| {
            eat(tag);
            for byte in value.to_le_bytes() {
                eat(byte);
            }
        };
        for op in &self.ops {
            match op {
                MemOp::Load(a) => eat_u64(1, a.raw()),
                MemOp::Store(a) => eat_u64(2, a.raw()),
                MemOp::Persist(a) => eat_u64(3, a.raw()),
                MemOp::Fence => eat_u64(4, 0),
                MemOp::Compute(n) => eat_u64(5, *n as u64),
            }
        }
        hash
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_each_kind() {
        let mut t = Trace::new("t");
        t.ops.push(MemOp::Load(LineAddr::new(0)));
        t.ops.push(MemOp::Store(LineAddr::new(1)));
        t.ops.push(MemOp::Store(LineAddr::new(1)));
        t.ops.push(MemOp::Persist(LineAddr::new(1)));
        t.ops.push(MemOp::Fence);
        t.ops.push(MemOp::Compute(5));
        let s = t.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 2);
        assert_eq!(s.persists, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.compute, 5);
        assert_eq!(s.footprint_lines, 2);
    }

    #[test]
    fn fractions() {
        let mut t = Trace::new("t");
        t.ops.push(MemOp::Load(LineAddr::new(0)));
        t.ops.push(MemOp::Store(LineAddr::new(1)));
        t.ops.push(MemOp::Compute(2));
        let s = t.stats();
        assert!((s.memory_fraction() - 0.5).abs() < 1e-9);
        assert!((s.write_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.stats().memory_fraction(), 0.0);
    }
}
