//! Property tests: the persistent data structures behave exactly like
//! their std reference models for arbitrary operation sequences, and the
//! traces they record stay well-formed.

use scue_util::prop::{self, prelude::*};
use scue_workloads::generators::{PmBtree, PmHash, PmQueue, PmRbtree};
use scue_workloads::{MemOp, Workload};
use std::collections::{BTreeMap, VecDeque};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// B+tree == BTreeMap for arbitrary insert/update/lookup sequences.
    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec((1u64..500, any::<u64>()), 1..150)) {
        let mut tree = PmBtree::new(4096);
        let mut reference = BTreeMap::new();
        for (key, value) in ops {
            tree.insert(key, value);
            reference.insert(key, value);
        }
        for (&key, &value) in &reference {
            prop_assert_eq!(tree.get(key), Some(value));
        }
        let keys: Vec<u64> = reference.keys().copied().collect();
        prop_assert_eq!(tree.keys_in_order(), keys);
    }

    /// Red-black tree == BTreeMap, and the colour invariants hold after
    /// every batch.
    #[test]
    fn rbtree_matches_btreemap(ops in prop::collection::vec((1u64..500, any::<u64>()), 1..150)) {
        let mut tree = PmRbtree::new(4096);
        let mut reference = BTreeMap::new();
        for (key, value) in ops {
            tree.insert(key, value);
            reference.insert(key, value);
        }
        prop_assert!(tree.black_height().is_some(), "red-black invariants violated");
        for (&key, &value) in &reference {
            prop_assert_eq!(tree.get(key), Some(value));
        }
        let keys: Vec<u64> = reference.keys().copied().collect();
        prop_assert_eq!(tree.keys_in_order(), keys);
    }

    /// Ring-buffer queue == VecDeque under mixed enqueue/dequeue.
    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(prop::option::of(any::<u64>()), 1..200)) {
        let mut queue = PmQueue::new(32);
        let mut reference: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Some(value) => {
                    let accepted = queue.enqueue(value);
                    prop_assert_eq!(accepted, reference.len() < 32);
                    if accepted {
                        reference.push_back(value);
                    }
                }
                None => {
                    prop_assert_eq!(queue.dequeue(), reference.pop_front());
                }
            }
            prop_assert_eq!(queue.len(), reference.len());
        }
    }

    /// Hash table == BTreeMap (no key is ever lost or aliased).
    #[test]
    fn hash_matches_map(ops in prop::collection::vec((1u64..10_000, any::<u64>()), 1..200)) {
        let mut table = PmHash::new(1024);
        let mut reference = BTreeMap::new();
        for (key, value) in ops {
            prop_assert!(table.insert(key, value));
            reference.insert(key, value);
        }
        prop_assert_eq!(table.len(), reference.len());
        for (&key, &value) in &reference {
            prop_assert_eq!(table.get(key), Some(value));
        }
        prop_assert_eq!(table.get(10_001), None);
    }

    /// Generated traces are well-formed: every persist is eventually
    /// fenced, and no op addresses a line outside the region the
    /// structure allocated.
    #[test]
    fn traces_are_well_formed(scale in 50usize..400, seed in any::<u64>()) {
        for workload in Workload::PERSISTENT {
            let trace = workload.generate(scale, seed);
            let mut pending_persists = 0u64;
            let mut max_line = 0u64;
            for op in &trace.ops {
                match op {
                    MemOp::Persist(a) => {
                        pending_persists += 1;
                        max_line = max_line.max(a.raw());
                    }
                    MemOp::Fence => pending_persists = 0,
                    MemOp::Load(a) | MemOp::Store(a) => max_line = max_line.max(a.raw()),
                    MemOp::Compute(_) => {}
                }
            }
            prop_assert_eq!(pending_persists, 0, "{}: unfenced persists at end", workload);
            prop_assert!(max_line < 1 << 22, "{}: footprint out of range", workload);
        }
    }

    /// SPEC generators respect their declared footprint and write mix for
    /// arbitrary seeds.
    #[test]
    fn spec_respects_profile(seed in any::<u64>()) {
        for app in Workload::SPEC {
            let profile = scue_workloads::spec::profile(app);
            let trace = scue_workloads::spec::generate(app, 4_000, seed);
            let stats = trace.stats();
            let target = profile.write_pct as f64 / 100.0;
            prop_assert!((stats.write_fraction() - target).abs() < 0.05, "{app}");
            for op in &trace.ops {
                if let MemOp::Load(a) | MemOp::Store(a) = op {
                    prop_assert!(a.raw() < profile.footprint_lines, "{app}");
                }
            }
        }
    }
}
