//! Workload determinism pins: a fixed `(workload, scale, seed)` must
//! produce a byte-identical trace on every machine, every build.
//!
//! The golden fingerprints below were produced by the in-repo
//! SplitMix64/xoshiro256** PRNG (`scue_util::rng`) at the PRNG swap that
//! made the workspace hermetic; they are the reference the figures in
//! `results/` are reproducible against. If a deliberate generator change
//! alters a trace, re-pin the constants and note it in the PR.

use scue_workloads::Workload;

const SCALE: usize = 2_000;
const SEED: u64 = 1;

#[test]
fn traces_are_run_to_run_deterministic() {
    for workload in Workload::ALL {
        let a = workload.generate(SCALE, SEED);
        let b = workload.generate(SCALE, SEED);
        assert_eq!(a.ops, b.ops, "{workload}: same seed, different trace");
        assert_ne!(
            a.fingerprint(),
            workload.generate(SCALE, SEED + 1).fingerprint(),
            "{workload}: seed is ignored"
        );
    }
}

/// Golden fingerprints for `(scale = 2000, seed = 1)`; see module docs.
const GOLDEN: [(&str, u64); 13] = [
    ("array", 0x5FB6_A872_E5F4_A936),
    ("btree", 0xBCE4_2991_F065_7C8C),
    ("hash", 0x6454_DA81_9880_79F9),
    ("queue", 0x7C56_41AE_AF90_8599),
    ("rbtree", 0xEDCC_21E7_6A7D_D1FD),
    ("lbm", 0xD5DF_BA89_618C_D91D),
    ("mcf", 0x7496_192A_7675_0BDD),
    ("libquantum", 0x0059_2B01_7277_C36A),
    ("omnetpp", 0x1F7D_59DF_627C_76AA),
    ("milc", 0x6596_FE0A_AC7E_8F1D),
    ("soplex", 0xB06C_63F7_DC70_3782),
    ("gcc", 0x9E4E_10D3_76FC_1C15),
    ("bwaves", 0x0471_398F_5505_8A96),
];

#[test]
fn trace_fingerprints_match_golden() {
    assert_eq!(GOLDEN.len(), Workload::ALL.len());
    for workload in Workload::ALL {
        let got = workload.generate(SCALE, SEED).fingerprint();
        let (_, want) = GOLDEN
            .iter()
            .find(|(name, _)| *name == workload.name())
            .unwrap_or_else(|| panic!("{workload}: no golden fingerprint pinned"));
        assert_eq!(
            got, *want,
            "{workload}: trace changed — fingerprint {got:#018X} vs pinned {want:#018X}"
        );
    }
}
