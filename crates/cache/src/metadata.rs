//! The memory-controller metadata cache (Table II: 256 KB, 8-way, 64 B).
//!
//! Holds security metadata — counter blocks and integrity-tree nodes — *by
//! content*: the update schemes mutate cached nodes in place (increment a
//! counter, recompute an HMAC) and only materialize bytes when a node is
//! flushed to NVM. Resident nodes are inside the trusted on-chip domain,
//! so they serve as verification bases without re-checking (§IV-A1).
//!
//! The payload type `V` is supplied by the scheme layer (a decoded node).
//! Every eviction of a dirty node is where the paper's schemes diverge:
//! Lazy reads ancestors to verify, SCUE builds a dummy counter instead —
//! the cache just hands the victim back to the scheme.

use crate::set_assoc::{Eviction, SetAssocCache};
use scue_nvm::LineAddr;
use scue_util::obs::span;

/// Metadata-cache lookup/fill statistics.
///
/// Replaces the old anonymous `(hits, misses, fills)` tuple so call
/// sites read as `stats.hits` rather than `stats.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MdCacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Total line fills (inserts), including refills after eviction.
    pub fills: u64,
}

impl MdCacheStats {
    /// Hit fraction of all lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// The metadata cache in the memory controller.
///
/// A thin policy wrapper over [`SetAssocCache`] with hardware-style byte
/// sizing and a fetch-count statistic (metadata fetches from NVM dominate
/// recovery time, §V-D).
///
/// # Example
///
/// ```
/// use scue_cache::MetadataCache;
/// use scue_nvm::LineAddr;
///
/// let mut mdc: MetadataCache<u32> = MetadataCache::with_bytes(8 * 64, 2);
/// mdc.insert(LineAddr::new(1), 11, true);
/// assert_eq!(mdc.get(LineAddr::new(1)), Some(&11));
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache<V> {
    inner: SetAssocCache<V>,
    fills: u64,
}

impl<V> MetadataCache<V> {
    /// The paper's 256 KB, 8-way configuration.
    pub fn paper() -> Self {
        Self::with_bytes(256 * 1024, 8)
    }

    /// A cache of `capacity_bytes` with the given associativity.
    pub fn with_bytes(capacity_bytes: usize, ways: usize) -> Self {
        Self {
            inner: SetAssocCache::with_bytes(capacity_bytes, ways),
            fills: 0,
        }
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no metadata is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Looks up a node, refreshing LRU.
    pub fn get(&mut self, addr: LineAddr) -> Option<&V> {
        let _span = span::enter("mdcache.lookup");
        self.inner.get(addr)
    }

    /// Looks up a node mutably, refreshing LRU and marking it dirty — the
    /// path every counter increment takes.
    pub fn get_mut_dirty(&mut self, addr: LineAddr) -> Option<&mut V> {
        let _span = span::enter("mdcache.lookup");
        self.inner.get_mut_dirty(addr)
    }

    /// Residency probe without LRU or stats effects.
    pub fn contains(&self, addr: LineAddr) -> bool {
        let _span = span::enter("mdcache.lookup");
        self.inner.contains(addr)
    }

    /// Inserts a node fetched from NVM (or freshly created); returns the
    /// victim the scheme must flush if one was evicted.
    pub fn insert(&mut self, addr: LineAddr, value: V, dirty: bool) -> Option<Eviction<V>> {
        self.fills += 1;
        self.inner.insert(addr, value, dirty)
    }

    /// Marks a resident node dirty; returns whether it was resident.
    pub fn mark_dirty(&mut self, addr: LineAddr) -> bool {
        self.inner.mark_dirty(addr)
    }

    /// Removes a node (e.g., a forced flush), returning it if resident.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<Eviction<V>> {
        self.inner.invalidate(addr)
    }

    /// Drains every resident node — end-of-run flush or the eADR crash
    /// path (contents reach NVM, but *no computation* happens, §III-C).
    pub fn drain_all(&mut self) -> Vec<Eviction<V>> {
        self.inner.drain_all()
    }

    /// Discards all resident nodes (crash without eADR).
    pub fn discard_all(&mut self) {
        self.inner.discard_all()
    }

    /// Iterates over resident nodes.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V, bool)> {
        self.inner.iter()
    }

    /// Lookup and fill statistics.
    pub fn stats(&self) -> MdCacheStats {
        let (hits, misses) = self.inner.stats();
        MdCacheStats {
            hits,
            misses,
            fills: self.fills,
        }
    }
}

impl<V> Default for MetadataCache<V> {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity() {
        let mdc: MetadataCache<()> = MetadataCache::paper();
        assert_eq!(mdc.capacity(), 256 * 1024 / 64);
    }

    #[test]
    fn dirty_eviction_surfaces() {
        let mut mdc: MetadataCache<u8> = MetadataCache::with_bytes(64, 1); // 1 line
        mdc.insert(LineAddr::new(0), 1, true);
        let ev = mdc.insert(LineAddr::new(1), 2, false).expect("evicts");
        assert_eq!(ev.addr, LineAddr::new(0));
        assert!(ev.dirty);
    }

    #[test]
    fn get_mut_marks_dirty() {
        let mut mdc: MetadataCache<u8> = MetadataCache::with_bytes(2 * 64, 2);
        mdc.insert(LineAddr::new(0), 1, false);
        *mdc.get_mut_dirty(LineAddr::new(0)).unwrap() += 1;
        let ev = mdc.invalidate(LineAddr::new(0)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.value, 2);
    }

    #[test]
    fn fills_counted() {
        let mut mdc: MetadataCache<u8> = MetadataCache::with_bytes(2 * 64, 2);
        mdc.insert(LineAddr::new(0), 1, false);
        mdc.insert(LineAddr::new(1), 2, false);
        assert_eq!(mdc.stats().fills, 2);
    }

    #[test]
    fn hit_rate_edge_cases() {
        assert_eq!(MdCacheStats::default().hit_rate(), 0.0);
        let s = MdCacheStats {
            hits: 3,
            misses: 1,
            fills: 0,
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn drain_and_discard() {
        let mut mdc: MetadataCache<u8> = MetadataCache::with_bytes(4 * 64, 2);
        mdc.insert(LineAddr::new(0), 1, true);
        mdc.insert(LineAddr::new(1), 2, false);
        assert_eq!(mdc.drain_all().len(), 2);
        assert!(mdc.is_empty());
        mdc.insert(LineAddr::new(2), 3, true);
        mdc.discard_all();
        assert!(mdc.is_empty());
    }
}
