//! The core-side data-cache hierarchy (timing only).
//!
//! Table II: per-core L1 64 KB 2-way and L2 512 KB 8-way, shared L3 4 MB
//! 8-way, all 64 B blocks with LRU. The hierarchy is write-back /
//! write-allocate and inclusive-ish (fills populate every level; evictions
//! cascade downward). User data content lives in the functional NVM store —
//! the hierarchy only tracks presence and dirtiness, which is all the
//! timing model needs.
//!
//! Dirty lines leaving L3, and lines forced out by explicit persists
//! (`clwb`), surface as [`AccessResult::writebacks`]: these are exactly the
//! "persisted user data" events that drive integrity-tree leaf updates in
//! every scheme.

use crate::set_assoc::SetAssocCache;
use scue_nvm::{Cycle, LineAddr};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSide {
    /// Hit in the private L1.
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the shared L3.
    L3,
    /// Missed everywhere; needs a memory-side (secure) fill.
    Memory,
}

/// Outcome of one load/store through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResult {
    /// Which level satisfied the access.
    pub served_by: MemSide,
    /// Cache lookup latency (excludes any memory-side fill the caller
    /// performs when `served_by == Memory`).
    pub latency: Cycle,
    /// Dirty user-data lines pushed out to memory by this access; the
    /// caller routes them through the secure write path.
    pub writebacks: Vec<LineAddr>,
}

/// Geometry and latencies of the three-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 size in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency, cycles.
    pub l1_latency: Cycle,
    /// Private L2 size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency, cycles.
    pub l2_latency: Cycle,
    /// Shared L3 size in bytes.
    pub l3_bytes: usize,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 hit latency, cycles.
    pub l3_latency: Cycle,
}

impl HierarchyConfig {
    /// The paper's Table II configuration.
    pub fn paper() -> Self {
        Self {
            l1_bytes: 64 * 1024,
            l1_ways: 2,
            l1_latency: 4,
            l2_bytes: 512 * 1024,
            l2_ways: 8,
            l2_latency: 12,
            l3_bytes: 4 * 1024 * 1024,
            l3_ways: 8,
            l3_latency: 30,
        }
    }

    /// A tiny hierarchy for unit tests (few lines per level).
    pub fn tiny() -> Self {
        Self {
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l1_latency: 1,
            l2_bytes: 8 * 64,
            l2_ways: 2,
            l2_latency: 3,
            l3_bytes: 16 * 64,
            l3_ways: 4,
            l3_latency: 5,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-level hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// Accesses that went to memory.
    pub mem_accesses: u64,
}

/// The multi-core data hierarchy: per-core L1/L2, shared L3.
///
/// # Example
///
/// ```
/// use scue_cache::{DataHierarchy, HierarchyConfig, MemSide};
/// use scue_nvm::LineAddr;
///
/// let mut h = DataHierarchy::new(HierarchyConfig::tiny(), 1);
/// let first = h.access(0, LineAddr::new(0), false);
/// assert_eq!(first.served_by, MemSide::Memory);
/// let second = h.access(0, LineAddr::new(0), false);
/// assert_eq!(second.served_by, MemSide::L1);
/// ```
#[derive(Debug, Clone)]
pub struct DataHierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache<()>>,
    l2: Vec<SetAssocCache<()>>,
    l3: SetAssocCache<()>,
    stats: HierarchyStats,
}

impl DataHierarchy {
    /// Builds a hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(config: HierarchyConfig, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self {
            config,
            l1: (0..cores)
                .map(|_| SetAssocCache::with_bytes(config.l1_bytes, config.l1_ways))
                .collect(),
            l2: (0..cores)
                .map(|_| SetAssocCache::with_bytes(config.l2_bytes, config.l2_ways))
                .collect(),
            l3: SetAssocCache::with_bytes(config.l3_bytes, config.l3_ways),
            stats: HierarchyStats::default(),
        }
    }

    /// Number of cores this hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Per-level statistics so far.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Performs one load (`is_write == false`) or store through the
    /// hierarchy for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: LineAddr, is_write: bool) -> AccessResult {
        let cfg = self.config;
        let mut writebacks = Vec::new();
        let (served_by, latency) = if self.l1[core].get(addr).is_some() {
            self.stats.l1_hits += 1;
            (MemSide::L1, cfg.l1_latency)
        } else if self.l2[core].get(addr).is_some() {
            self.stats.l2_hits += 1;
            self.fill_l1(core, addr, &mut writebacks);
            (MemSide::L2, cfg.l1_latency + cfg.l2_latency)
        } else if self.l3.get(addr).is_some() {
            self.stats.l3_hits += 1;
            self.fill_l2(core, addr, &mut writebacks);
            self.fill_l1(core, addr, &mut writebacks);
            (
                MemSide::L3,
                cfg.l1_latency + cfg.l2_latency + cfg.l3_latency,
            )
        } else {
            self.stats.mem_accesses += 1;
            self.fill_l3(addr, &mut writebacks);
            self.fill_l2(core, addr, &mut writebacks);
            self.fill_l1(core, addr, &mut writebacks);
            (
                MemSide::Memory,
                cfg.l1_latency + cfg.l2_latency + cfg.l3_latency,
            )
        };
        if is_write {
            self.l1[core].mark_dirty(addr);
        }
        AccessResult {
            served_by,
            latency,
            writebacks,
        }
    }

    fn fill_l1(&mut self, core: usize, addr: LineAddr, writebacks: &mut Vec<LineAddr>) {
        if let Some(victim) = self.l1[core].insert(addr, (), false) {
            if victim.dirty {
                // Dirty L1 victim lands dirty in L2 (it is resident there
                // in an inclusive hierarchy; insert refreshes it).
                if let Some(v2) = self.l2[core].insert(victim.addr, (), true) {
                    if v2.dirty {
                        self.spill_to_l3(v2.addr, writebacks);
                    }
                }
            }
        }
    }

    fn fill_l2(&mut self, core: usize, addr: LineAddr, writebacks: &mut Vec<LineAddr>) {
        if let Some(victim) = self.l2[core].insert(addr, (), false) {
            if victim.dirty {
                self.spill_to_l3(victim.addr, writebacks);
            }
        }
    }

    fn fill_l3(&mut self, addr: LineAddr, writebacks: &mut Vec<LineAddr>) {
        if let Some(victim) = self.l3.insert(addr, (), false) {
            if victim.dirty {
                writebacks.push(victim.addr);
            }
        }
    }

    fn spill_to_l3(&mut self, addr: LineAddr, writebacks: &mut Vec<LineAddr>) {
        if let Some(victim) = self.l3.insert(addr, (), true) {
            if victim.dirty {
                writebacks.push(victim.addr);
            }
        }
    }

    /// Explicitly flushes `addr` (the `clwb` in a persist barrier): if the
    /// line is dirty anywhere it is cleaned and returned for the secure
    /// write path; clean or absent lines return `None`.
    ///
    /// The line stays resident (clwb semantics: write back, do not evict).
    pub fn flush_line(&mut self, core: usize, addr: LineAddr) -> Option<LineAddr> {
        let mut was_dirty = false;
        if let Some(ev) = self.l1[core].invalidate(addr) {
            was_dirty |= ev.dirty;
            self.l1[core].insert(addr, (), false);
        }
        if let Some(ev) = self.l2[core].invalidate(addr) {
            was_dirty |= ev.dirty;
            self.l2[core].insert(addr, (), false);
        }
        if let Some(ev) = self.l3.invalidate(addr) {
            was_dirty |= ev.dirty;
            self.l3.insert(addr, (), false);
        }
        was_dirty.then_some(addr)
    }

    /// Drains every dirty line in the whole hierarchy (end-of-run
    /// writeback, or the eADR crash flush). Lines stay resident but clean.
    pub fn flush_all_dirty(&mut self) -> Vec<LineAddr> {
        let mut dirty: Vec<LineAddr> = Vec::new();
        for core in 0..self.l1.len() {
            for cache in [&mut self.l1[core], &mut self.l2[core]] {
                for ev in cache.drain_all() {
                    if ev.dirty {
                        dirty.push(ev.addr);
                    }
                }
            }
        }
        for ev in self.l3.drain_all() {
            if ev.dirty {
                dirty.push(ev.addr);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Discards all cached state (a crash *without* eADR).
    pub fn discard_all(&mut self) {
        for cache in &mut self.l1 {
            cache.discard_all();
        }
        for cache in &mut self.l2 {
            cache.discard_all();
        }
        self.l3.discard_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> DataHierarchy {
        DataHierarchy::new(HierarchyConfig::tiny(), 2)
    }

    #[test]
    fn miss_then_hit() {
        let mut h = hierarchy();
        assert_eq!(
            h.access(0, LineAddr::new(0), false).served_by,
            MemSide::Memory
        );
        assert_eq!(h.access(0, LineAddr::new(0), false).served_by, MemSide::L1);
    }

    #[test]
    fn l3_is_shared_across_cores() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), false);
        let r = h.access(1, LineAddr::new(0), false);
        assert_eq!(r.served_by, MemSide::L3, "core 1 finds core 0's fill in L3");
    }

    #[test]
    fn l1_is_private() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), false);
        // Core 1's first access can't be an L1/L2 hit.
        let r = h.access(1, LineAddr::new(0), false);
        assert_ne!(r.served_by, MemSide::L1);
        assert_ne!(r.served_by, MemSide::L2);
    }

    #[test]
    fn dirty_line_eventually_writes_back() {
        let mut h = DataHierarchy::new(HierarchyConfig::tiny(), 1);
        h.access(0, LineAddr::new(0), true);
        // Thrash far more lines than total capacity to force 0 out of L3.
        let mut writebacks = Vec::new();
        for i in 1..200 {
            writebacks.extend(h.access(0, LineAddr::new(i), false).writebacks);
        }
        assert!(
            writebacks.contains(&LineAddr::new(0)),
            "dirty line must surface as a memory writeback"
        );
    }

    #[test]
    fn clean_lines_never_write_back() {
        let mut h = DataHierarchy::new(HierarchyConfig::tiny(), 1);
        let mut writebacks = Vec::new();
        for i in 0..200 {
            writebacks.extend(h.access(0, LineAddr::new(i), false).writebacks);
        }
        assert!(writebacks.is_empty());
    }

    #[test]
    fn flush_line_returns_dirty_only() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), true);
        h.access(0, LineAddr::new(1), false);
        assert_eq!(h.flush_line(0, LineAddr::new(0)), Some(LineAddr::new(0)));
        assert_eq!(h.flush_line(0, LineAddr::new(1)), None);
        // A second flush of the same line is clean.
        assert_eq!(h.flush_line(0, LineAddr::new(0)), None);
    }

    #[test]
    fn flush_keeps_line_resident() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), true);
        h.flush_line(0, LineAddr::new(0));
        assert_eq!(h.access(0, LineAddr::new(0), false).served_by, MemSide::L1);
    }

    #[test]
    fn flush_all_dirty_dedups() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), true);
        h.access(0, LineAddr::new(1), true);
        h.access(1, LineAddr::new(2), true);
        let dirty = h.flush_all_dirty();
        assert_eq!(
            dirty,
            vec![LineAddr::new(0), LineAddr::new(1), LineAddr::new(2)]
        );
    }

    #[test]
    fn discard_all_loses_dirty_data() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), true);
        h.discard_all();
        assert!(h.flush_all_dirty().is_empty());
    }

    #[test]
    fn latency_grows_with_depth() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), false);
        h.access(1, LineAddr::new(0), false);
        let l1 = h.access(0, LineAddr::new(0), false).latency;
        let l3_path = h.access(1, LineAddr::new(0), false).latency; // now L1 for core 1
        assert!(l1 <= l3_path);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = hierarchy();
        h.access(0, LineAddr::new(0), false);
        h.access(0, LineAddr::new(0), false);
        let s = h.stats();
        assert_eq!(s.mem_accesses, 1);
        assert_eq!(s.l1_hits, 1);
    }
}
