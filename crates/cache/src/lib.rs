//! Cache substrate: set-associative LRU caches for data and metadata.
//!
//! Three cache roles appear in the evaluated system (Table II):
//!
//! * the **data hierarchy** — per-core L1 (64 KB, 2-way) and L2 (512 KB,
//!   8-way) plus a shared L3 (4 MB, 8-way), 64 B blocks, LRU — modelled for
//!   *timing* only in [`hierarchy`];
//! * the **metadata cache** — 256 KB, 8-way, in the memory controller,
//!   holding counter blocks and integrity-tree nodes *by content* (the
//!   update schemes read and mutate cached nodes), in [`metadata`];
//! * both are built on the generic content-carrying LRU in [`set_assoc`].
//!
//! Cached (on-chip) state is inside the trusted domain: nodes resident in
//! the metadata cache are *trusted bases* for verification (§II-D4), and
//! everything here is volatile — lost on crash unless eADR flushes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod metadata;
pub mod set_assoc;

pub use hierarchy::{DataHierarchy, HierarchyConfig, MemSide};
pub use metadata::{MdCacheStats, MetadataCache};
pub use set_assoc::{Eviction, SetAssocCache};
