//! A generic set-associative LRU cache carrying per-line payloads.
//!
//! The payload type `V` is whatever the layer above caches: `()` for the
//! timing-only data hierarchy, a decoded metadata line for the metadata
//! cache. Dirty lines are returned on eviction so the owner can perform
//! writebacks (and, for metadata, the scheme-specific flush work that the
//! whole paper is about).

use scue_nvm::LineAddr;

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<V> {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// Its payload at eviction time.
    pub value: V,
    /// Whether it was modified since insertion (needs writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    addr: LineAddr,
    value: V,
    dirty: bool,
    stamp: u64,
}

/// Set-associative LRU cache keyed by [`LineAddr`].
///
/// # Example
///
/// ```
/// use scue_cache::SetAssocCache;
/// use scue_nvm::LineAddr;
///
/// let mut cache: SetAssocCache<u32> = SetAssocCache::new(2, 2); // 2 sets, 2 ways
/// cache.insert(LineAddr::new(0), 10, false);
/// assert_eq!(cache.get(LineAddr::new(0)), Some(&10));
/// assert_eq!(cache.get(LineAddr::new(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<Slot<V>>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a cache sized like hardware: `capacity_bytes` split into
    /// 64 B lines with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero.
    pub fn with_bytes(capacity_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / scue_nvm::LINE_BYTES;
        let sets = lines / ways;
        Self::new(sets, ways)
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) observed by `get`/`get_mut`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.raw() % self.sets.len() as u64) as usize
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a line, refreshing its LRU position.
    pub fn get(&mut self, addr: LineAddr) -> Option<&V> {
        let stamp = self.next_stamp();
        let set = self.set_index(addr);
        match self.sets[set].iter_mut().find(|s| s.addr == addr) {
            Some(slot) => {
                slot.stamp = stamp;
                self.hits += 1;
                Some(&slot.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a line mutably, refreshing LRU and marking it dirty.
    pub fn get_mut_dirty(&mut self, addr: LineAddr) -> Option<&mut V> {
        let stamp = self.next_stamp();
        let set = self.set_index(addr);
        match self.sets[set].iter_mut().find(|s| s.addr == addr) {
            Some(slot) => {
                slot.stamp = stamp;
                slot.dirty = true;
                self.hits += 1;
                Some(&mut slot.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks residency without disturbing LRU or statistics.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.sets[self.set_index(addr)]
            .iter()
            .any(|s| s.addr == addr)
    }

    /// Inserts (or updates) a line, returning the victim if one had to be
    /// evicted. Updating an existing line ORs in `dirty`.
    pub fn insert(&mut self, addr: LineAddr, value: V, dirty: bool) -> Option<Eviction<V>> {
        let stamp = self.next_stamp();
        let ways = self.ways;
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.addr == addr) {
            slot.value = value;
            slot.dirty |= dirty;
            slot.stamp = stamp;
            return None;
        }
        let victim = if set.len() >= ways {
            let (idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .expect("set is non-empty");
            let slot = set.swap_remove(idx);
            Some(Eviction {
                addr: slot.addr,
                value: slot.value,
                dirty: slot.dirty,
            })
        } else {
            None
        };
        set.push(Slot {
            addr,
            value,
            dirty,
            stamp,
        });
        victim
    }

    /// Marks a resident line dirty; returns whether it was resident.
    pub fn mark_dirty(&mut self, addr: LineAddr) -> bool {
        let set = self.set_index(addr);
        if let Some(slot) = self.sets[set].iter_mut().find(|s| s.addr == addr) {
            slot.dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes a line, returning it if it was resident.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<Eviction<V>> {
        let set = self.set_index(addr);
        let idx = self.sets[set].iter().position(|s| s.addr == addr)?;
        let slot = self.sets[set].swap_remove(idx);
        Some(Eviction {
            addr: slot.addr,
            value: slot.value,
            dirty: slot.dirty,
        })
    }

    /// Drains every resident line (dirty and clean), emptying the cache —
    /// the eADR flush path and the end-of-run writeback.
    pub fn drain_all(&mut self) -> Vec<Eviction<V>> {
        let mut out = Vec::with_capacity(self.len());
        for set in &mut self.sets {
            for slot in set.drain(..) {
                out.push(Eviction {
                    addr: slot.addr,
                    value: slot.value,
                    dirty: slot.dirty,
                });
            }
        }
        out
    }

    /// Discards every resident line without returning them — a crash
    /// *without* eADR: volatile contents simply vanish.
    pub fn discard_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over resident lines (no LRU effect).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V, bool)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|s| (s.addr, &s.value, s.dirty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> SetAssocCache<u64> {
        SetAssocCache::new(sets, ways)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = cache(4, 2);
        c.insert(LineAddr::new(5), 55, false);
        assert_eq!(c.get(LineAddr::new(5)), Some(&55));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(1, 2);
        c.insert(LineAddr::new(0), 0, false);
        c.insert(LineAddr::new(1), 1, false);
        c.get(LineAddr::new(0)); // 0 is now most recent
        let ev = c.insert(LineAddr::new(2), 2, false).expect("eviction");
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(2)));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = cache(1, 1);
        c.insert(LineAddr::new(0), 0, true);
        let ev = c.insert(LineAddr::new(1), 1, false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn update_ors_dirty() {
        let mut c = cache(1, 1);
        c.insert(LineAddr::new(0), 0, true);
        assert!(c.insert(LineAddr::new(0), 9, false).is_none());
        let ev = c.invalidate(LineAddr::new(0)).unwrap();
        assert!(ev.dirty, "a clean re-insert must not wash out dirtiness");
        assert_eq!(ev.value, 9);
    }

    #[test]
    fn get_mut_dirty_marks() {
        let mut c = cache(1, 1);
        c.insert(LineAddr::new(0), 1, false);
        *c.get_mut_dirty(LineAddr::new(0)).unwrap() = 2;
        let ev = c.invalidate(LineAddr::new(0)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.value, 2);
    }

    #[test]
    fn contains_does_not_touch_lru() {
        let mut c = cache(1, 2);
        c.insert(LineAddr::new(0), 0, false);
        c.insert(LineAddr::new(1), 1, false);
        assert!(c.contains(LineAddr::new(0)));
        // 0 is still LRU despite the contains() probe.
        let ev = c.insert(LineAddr::new(2), 2, false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = cache(2, 1);
        c.insert(LineAddr::new(0), 0, false);
        c.get(LineAddr::new(0));
        c.get(LineAddr::new(1));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn drain_all_returns_everything_and_empties() {
        let mut c = cache(2, 2);
        c.insert(LineAddr::new(0), 0, true);
        c.insert(LineAddr::new(1), 1, false);
        let drained = c.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn discard_all_loses_content() {
        let mut c = cache(2, 2);
        c.insert(LineAddr::new(0), 0, true);
        c.discard_all();
        assert!(c.is_empty());
        assert!(!c.contains(LineAddr::new(0)));
    }

    #[test]
    fn with_bytes_sizing() {
        // 256 KB, 8-way, 64 B lines = 4096 lines = 512 sets.
        let c: SetAssocCache<()> = SetAssocCache::with_bytes(256 * 1024, 8);
        assert_eq!(c.capacity(), 4096);
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let mut c = cache(4, 1);
        for i in 0..4 {
            c.insert(LineAddr::new(i), i, false);
        }
        assert_eq!(c.len(), 4, "distinct sets must not conflict");
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = SetAssocCache::<()>::new(1, 0);
    }
}
