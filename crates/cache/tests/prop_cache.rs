//! Property tests for the cache substrate against reference models.

use scue_cache::{DataHierarchy, HierarchyConfig, SetAssocCache};
use scue_nvm::LineAddr;
use scue_util::prop::{self, prelude::*};
use std::collections::{HashMap, HashSet};

proptest! {
    /// The cache never reports a value it was not given, and a resident
    /// line always returns the latest inserted/updated value.
    #[test]
    fn cache_is_a_lossy_map(ops in prop::collection::vec((0u64..32, any::<u16>()), 1..200)) {
        let mut cache: SetAssocCache<u16> = SetAssocCache::new(4, 2);
        let mut latest: HashMap<u64, u16> = HashMap::new();
        for (addr, val) in ops {
            cache.insert(LineAddr::new(addr), val, false);
            latest.insert(addr, val);
            if let Some(&got) = cache.get(LineAddr::new(addr)) {
                prop_assert_eq!(got, *latest.get(&addr).unwrap());
            } else {
                prop_assert!(false, "line just inserted must be resident");
            }
        }
        for addr in 0..32u64 {
            if let Some(&got) = cache.get(LineAddr::new(addr)) {
                prop_assert_eq!(got, *latest.get(&addr).unwrap(), "stale value surfaced");
            }
        }
    }

    /// Occupancy never exceeds capacity, and every set respects its ways.
    #[test]
    fn capacity_invariant(
        sets in 1usize..8,
        ways in 1usize..8,
        addrs in prop::collection::vec(0u64..256, 1..300),
    ) {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(sets, ways);
        for addr in addrs {
            cache.insert(LineAddr::new(addr), (), false);
            prop_assert!(cache.len() <= cache.capacity());
        }
    }

    /// Dirty data is conserved: every line marked dirty either remains
    /// resident-dirty or was handed out through an eviction/drain.
    #[test]
    fn dirty_lines_are_conserved(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..300)) {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(2, 2);
        let mut dirtied: HashSet<u64> = HashSet::new();
        let mut surfaced: HashSet<u64> = HashSet::new();
        for (addr, dirty) in ops {
            if let Some(ev) = cache.insert(LineAddr::new(addr), (), dirty) {
                if ev.dirty {
                    surfaced.insert(ev.addr.raw());
                }
            }
            if dirty {
                dirtied.insert(addr);
            }
        }
        for ev in cache.drain_all() {
            if ev.dirty {
                surfaced.insert(ev.addr.raw());
            }
        }
        for addr in dirtied {
            prop_assert!(
                surfaced.contains(&addr),
                "dirty line {addr} vanished without a writeback"
            );
        }
    }

    /// Hierarchy: a random access stream never loses dirty lines — every
    /// written address eventually surfaces via writebacks or a final
    /// flush, exactly once per "latest" version.
    #[test]
    fn hierarchy_conserves_dirty(ops in prop::collection::vec((0u64..128, any::<bool>()), 1..300)) {
        let mut h = DataHierarchy::new(HierarchyConfig::tiny(), 1);
        let mut written: HashSet<u64> = HashSet::new();
        let mut surfaced: HashSet<u64> = HashSet::new();
        for (addr, is_write) in ops {
            let r = h.access(0, LineAddr::new(addr), is_write);
            if is_write {
                written.insert(addr);
            }
            for wb in r.writebacks {
                surfaced.insert(wb.raw());
            }
        }
        for wb in h.flush_all_dirty() {
            surfaced.insert(wb.raw());
        }
        for addr in written {
            prop_assert!(surfaced.contains(&addr), "written line {addr} never persisted");
        }
    }

    /// Hierarchy accesses are idempotent on residency: an immediate
    /// re-access of the same line always hits L1.
    #[test]
    fn reaccess_hits_l1(addrs in prop::collection::vec(0u64..1024, 1..100)) {
        let mut h = DataHierarchy::new(HierarchyConfig::tiny(), 1);
        for addr in addrs {
            h.access(0, LineAddr::new(addr), false);
            let again = h.access(0, LineAddr::new(addr), false);
            prop_assert_eq!(again.served_by, scue_cache::MemSide::L1);
        }
    }
}
